"""Logical plan nodes for the embedded engine.

The binder (:mod:`repro.engine.planner`) turns a parsed ``Select`` into a
tree of these nodes; the rule optimizer rewrites the tree; the executor
interprets it.  Nodes are plain mutable dataclasses — the optimizer
replaces children in place of parents by returning new trees.
"""

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.engine import sqlast


class LogicalPlan:
    """Base class for logical operators."""

    def children(self):
        return []

    def label(self):
        return type(self).__name__.replace("Logical", "")


@dataclass
class Scan(LogicalPlan):
    """Read a base table, optionally restricted to ``columns`` (pruning)."""

    table: str
    alias: Optional[str] = None
    columns: Optional[List[str]] = None

    def label(self):
        parts = ["Scan " + self.table]
        if self.columns is not None:
            parts.append("cols=[{}]".format(", ".join(self.columns)))
        return " ".join(parts)


@dataclass
class Derived(LogicalPlan):
    """A derived table (subquery in FROM) with an alias."""

    child: LogicalPlan
    alias: str

    def children(self):
        return [self.child]

    def label(self):
        return "Derived AS {}".format(self.alias)


@dataclass
class Join(LogicalPlan):
    kind: str  # 'INNER' | 'LEFT'
    left: LogicalPlan
    right: LogicalPlan
    condition: sqlast.SqlNode

    def children(self):
        return [self.left, self.right]

    def label(self):
        return "{}Join ON {}".format(self.kind.title(), self.condition.to_sql())


@dataclass
class Filter(LogicalPlan):
    child: LogicalPlan
    predicate: sqlast.SqlNode

    def children(self):
        return [self.child]

    def label(self):
        return "Filter " + self.predicate.to_sql()


@dataclass
class Project(LogicalPlan):
    """Compute named output columns.  ``items`` are (expr, name) pairs."""

    child: LogicalPlan
    items: List[Tuple[sqlast.SqlNode, str]]

    def children(self):
        return [self.child]

    def label(self):
        rendered = ", ".join(
            "{} AS {}".format(expr.to_sql(), name) for expr, name in self.items
        )
        return "Project " + rendered


@dataclass
class Aggregate(LogicalPlan):
    """Group by ``groups`` (expr, name) and compute ``aggregates``
    (FuncCall, name)."""

    child: LogicalPlan
    groups: List[Tuple[sqlast.SqlNode, str]]
    aggregates: List[Tuple[sqlast.FuncCall, str]]

    def children(self):
        return [self.child]

    def label(self):
        groups = ", ".join(name for _, name in self.groups) or "<none>"
        aggs = ", ".join(
            "{} AS {}".format(call.to_sql(), name)
            for call, name in self.aggregates
        )
        return "Aggregate groups=[{}] aggs=[{}]".format(groups, aggs)


@dataclass
class Window(LogicalPlan):
    """Append window-function columns.  ``items`` are (WindowFunc, name)."""

    child: LogicalPlan
    items: List[Tuple[sqlast.WindowFunc, str]]

    def children(self):
        return [self.child]

    def label(self):
        rendered = ", ".join(
            "{} AS {}".format(func.to_sql(), name) for func, name in self.items
        )
        return "Window " + rendered


@dataclass
class Distinct(LogicalPlan):
    child: LogicalPlan

    def children(self):
        return [self.child]


@dataclass
class Sort(LogicalPlan):
    """Sort by output-column keys; ``drop`` names hidden sort columns that
    the executor removes after ordering.  ``limit_hint`` (set by the
    optimizer when a Limit sits directly above) lets the executor use
    top-N partial selection instead of a full sort."""

    child: LogicalPlan
    keys: List[Tuple[str, bool, Optional[bool]]]  # (column, desc, nulls_first)
    drop: List[str] = field(default_factory=list)
    limit_hint: Optional[int] = None

    def children(self):
        return [self.child]

    def label(self):
        rendered = ", ".join(
            "{} {}".format(name, "DESC" if desc else "ASC")
            for name, desc, _ in self.keys
        )
        return "Sort " + rendered


@dataclass
class Limit(LogicalPlan):
    child: LogicalPlan
    limit: Optional[int]
    offset: int = 0

    def children(self):
        return [self.child]

    def label(self):
        text = "Limit {}".format(self.limit)
        if self.offset:
            text += " Offset {}".format(self.offset)
        return text


def walk_plan(plan):
    """Yield plan nodes pre-order."""
    yield plan
    for child in plan.children():
        yield from walk_plan(child)


def format_plan(plan, indent=0, stats=None):
    """Render a plan tree as indented text (used by EXPLAIN).

    ``stats`` (from the executor's EXPLAIN ANALYZE mode) maps node ids to
    either raw ``(rows, seconds)`` tuples or annotated dicts (with
    ``rows_in``/``rows_out``/``seconds``) and is appended per line.
    """
    label = plan.label()
    if stats is not None and id(plan) in stats:
        node_stats = stats[id(plan)]
        if isinstance(node_stats, dict):
            label += "  [rows_in={} rows_out={} time={:.4f}s]".format(
                node_stats["rows_in"], node_stats["rows_out"],
                node_stats["seconds"],
            )
        else:
            rows, seconds = node_stats
            label += "  [rows={} time={:.4f}s]".format(rows, seconds)
    lines = ["  " * indent + label]
    for child in plan.children():
        lines.append(format_plan(child, indent + 1, stats))
    return "\n".join(lines)
