"""Trace exporters: plain JSON and Chrome ``trace_event`` format.

The Chrome format loads directly into ``chrome://tracing`` or Perfetto:
each finished span becomes a complete ("X") event with microsecond
timestamps; counters become metadata events.  Nesting is conveyed by time
containment on a single thread, which :func:`validate_chrome_trace`
checks structurally (it is what the CI job asserts on a real session's
export).
"""

import json


def to_json(tracer, stats=None):
    """Full structured dump: spans, counters, histograms, metadata."""
    return {
        "trace_id": tracer.trace_id,
        "spans": [span.as_dict() for span in _by_start(tracer.spans)],
        "counters": {
            name: counter.value for name, counter in tracer.counters.items()
        },
        "histograms": {
            name: histogram.as_dict()
            for name, histogram in tracer.histograms.items()
        },
        "metadata": dict(tracer.metadata),
        "stats": stats if stats is not None else {},
    }


def to_chrome_trace(tracer, stats=None):
    """Chrome ``trace_event`` JSON object ({"traceEvents": [...]}).

    Wall-clock spans share thread lane 1, nested by time containment.
    Spans carrying a ``virtual_seconds`` attribute (the simulated network
    channel accounts time without sleeping, so a 40ms transfer can live
    inside a 7ms wall-clock parent) go to lane 2, laid out sequentially
    on their own virtual timeline.
    """
    spans = _by_start(tracer.spans)
    base = spans[0].start if spans else 0.0
    events = []
    virtual_cursor = 0.0
    has_virtual = False
    for span in spans:
        args = {
            key: _jsonable(value) for key, value in span.attributes.items()
        }
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        virtual = "virtual_seconds" in span.attributes
        if virtual:
            has_virtual = True
            ts = base + virtual_cursor
            virtual_cursor += span.wall
        else:
            ts = span.start
        events.append(
            {
                "name": span.name,
                "cat": span.name.split(".")[0].split(":")[0],
                "ph": "X",
                "ts": round(ts * 1e6, 3),
                "dur": round(span.wall * 1e6, 3),
                "pid": 1,
                "tid": 2 if virtual else 1,
                "args": args,
            }
        )
    if events:
        events.insert(0, {
            "name": "thread_name", "ph": "M", "ts": 0, "pid": 1, "tid": 1,
            "args": {"name": "session (wall clock)"},
        })
        if has_virtual:
            events.insert(1, {
                "name": "thread_name", "ph": "M", "ts": 0, "pid": 1,
                "tid": 2, "args": {"name": "network (virtual clock)"},
            })
    for name, counter in sorted(tracer.counters.items()):
        events.append(
            {
                "name": name,
                "cat": "counter",
                "ph": "C",
                "ts": events[-1]["ts"] if events else 0,
                "pid": 1,
                "args": {"value": counter.value},
            }
        )
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "trace_id": tracer.trace_id,
            "metadata": dict(tracer.metadata),
            "stats": stats if stats is not None else {},
        },
    }
    return document


def write_trace(tracer, path, format="chrome", stats=None):
    """Serialize the trace to ``path``; returns the exported document."""
    if format == "chrome":
        document = to_chrome_trace(tracer, stats=stats)
    elif format == "json":
        document = to_json(tracer, stats=stats)
    else:
        raise ValueError("unknown trace format {!r}".format(format))
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1, default=_jsonable)
    return document


def validate_chrome_trace(document):
    """Structural checks on a Chrome trace document.

    Returns a list of problem strings (empty = valid): every event needs
    the required keys, and on each (pid, tid) lane spans must nest — any
    two "X" events either are disjoint or one contains the other.
    """
    problems = []
    if not isinstance(document, dict) or "traceEvents" not in document:
        return ["document has no traceEvents array"]
    events = document["traceEvents"]
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    lanes = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append("event {} is not an object".format(index))
            continue
        for key in ("name", "ph", "ts", "pid"):
            if key not in event:
                problems.append(
                    "event {} ({!r}) missing {!r}".format(
                        index, event.get("name"), key
                    )
                )
        if event.get("ph") != "X":
            continue
        if "dur" not in event:
            problems.append(
                "complete event {} ({!r}) missing dur".format(
                    index, event.get("name")
                )
            )
            continue
        lane = (event.get("pid"), event.get("tid"))
        lanes.setdefault(lane, []).append(
            (float(event["ts"]), float(event["ts"]) + float(event["dur"]),
             event.get("name"))
        )
    epsilon = 1e-3  # one nanosecond in microseconds: rounding slack
    for lane, intervals in lanes.items():
        # Sort enclosing spans before the spans they contain (same start,
        # larger end first), then sweep with an open-interval stack.
        intervals.sort(key=lambda interval: (interval[0], -interval[1]))
        stack = []
        for start, end, name in intervals:
            while stack and start >= stack[-1][1] - epsilon:
                stack.pop()
            if stack and end > stack[-1][1] + epsilon:
                problems.append(
                    "spans {!r} and {!r} overlap without nesting on lane "
                    "{}".format(stack[-1][2], name, lane)
                )
                continue
            stack.append((start, end, name))
    return problems


def _by_start(spans):
    return sorted(spans, key=lambda span: (span.start, span.span_id))


def _jsonable(value):
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)
