"""Interaction traces: scripted stand-ins for the demo's live users.

A trace is a sequence of (signal, value) steps with idle gaps.  Replay
drives a session through the trace, optionally letting the prefetcher use
the idle time between interactions — which is how E3 measures the benefit
of prediction + caching.
"""

from dataclasses import dataclass, field
from typing import List


@dataclass
class InteractionStep:
    signal: str
    value: object
    #: idle seconds before this step (think time the prefetcher can use)
    think_seconds: float = 1.0


@dataclass
class InteractionTrace:
    """A scripted user."""

    name: str
    steps: List[InteractionStep] = field(default_factory=list)

    def add(self, signal, value, think_seconds=1.0):
        self.steps.append(InteractionStep(signal, value, think_seconds))
        return self


def slider_drag(signal, start, stop, step=1, name=None):
    """A user dragging a slider monotonically — the classic prefetchable
    pattern (bin-width slider in the flights demo)."""
    trace = InteractionTrace(name or "drag:{}".format(signal))
    direction = 1 if stop >= start else -1
    value = start
    while (value <= stop) if direction > 0 else (value >= stop):
        trace.add(signal, value)
        value += step * direction
    return trace


def option_cycle(signal, options, name=None, repeats=1):
    """A user cycling through a drop-down / radio control."""
    trace = InteractionTrace(name or "cycle:{}".format(signal))
    for _ in range(repeats):
        for option in options:
            trace.add(signal, option)
    return trace


def interleave(first, second, name=None):
    """Alternate two traces step by step (mixed-control behaviour)."""
    trace = InteractionTrace(name or "mix:{}+{}".format(first.name, second.name))
    for a, b in zip(first.steps, second.steps):
        trace.steps.append(a)
        trace.steps.append(b)
    return trace


@dataclass
class ReplayReport:
    """Aggregate outcome of replaying a trace."""

    trace: str
    results: list = field(default_factory=list)
    prefetches: int = 0

    @property
    def interactions(self):
        return len(self.results)

    @property
    def total_latency(self):
        return sum(result.breakdown.total for result in self.results)

    @property
    def mean_latency(self):
        if not self.results:
            return 0.0
        return self.total_latency / len(self.results)

    @property
    def cache_hit_rate(self):
        hits = sum(result.cache_hits for result in self.results)
        misses = sum(result.cache_misses for result in self.results)
        if hits + misses == 0:
            return 0.0
        return hits / (hits + misses)

    def latencies(self):
        return [result.breakdown.total for result in self.results]


def replay(session, trace, prefetch=True):
    """Drive ``session`` through ``trace``.

    With ``prefetch=True`` the session's prefetcher runs during each think
    gap (idle-time prefetching, §2.2 step 4); prefetch queries are logged
    but their time does not count toward interaction latency.
    """
    report = ReplayReport(trace=trace.name)
    for step in trace.steps:
        if prefetch and step.think_seconds > 0:
            done = session.idle()
            report.prefetches += len(done)
        result = session.interact(step.signal, step.value)
        report.results.append(result)
    return report
