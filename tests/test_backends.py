"""Backend adapter tests: both backends must behave identically through
the common interface on translator-emitted SQL."""

import pytest

from repro.backends import (
    BackendError,
    EmbeddedBackend,
    SQLiteBackend,
    available_backends,
    create_backend,
)
from repro.engine import Table
from repro.fuzz.normalize import canonical_table, diff_canonical, rows_equivalent


@pytest.fixture(params=["embedded", "sqlite"])
def backend(request):
    instance = create_backend(request.param)
    instance.load_table(
        "t",
        Table.from_columns(
            x=[1.0, 2.0, 3.0, None],
            k=["a", "b", "a", "b"],
            d=[1.5778368e12, 1.5778368e12, 1.6093440e12, None],  # epoch ms
        ),
    )
    return instance


class TestCommonBehaviour:
    def test_row_count(self, backend):
        assert backend.row_count("t") == 4

    def test_table_names(self, backend):
        assert "t" in backend.table_names()

    def test_select(self, backend):
        result = backend.execute("SELECT x FROM t WHERE x > 1.5")
        values = sorted(row["x"] for row in result.table.to_rows())
        assert values == [2.0, 3.0]
        assert result.seconds >= 0.0

    def test_aggregate(self, backend):
        result = backend.execute(
            'SELECT k, COUNT(*) AS n, SUM(x) AS s FROM t GROUP BY k ORDER BY k'
        )
        rows = result.table.to_rows()
        assert rows[0]["k"] == "a" and rows[0]["n"] == 2
        assert rows[1]["s"] == 2.0

    def test_null_handling(self, backend):
        result = backend.execute("SELECT COUNT(x) AS v FROM t")
        assert result.table.to_rows()[0]["v"] == 3

    def test_regexp(self, backend):
        result = backend.execute("SELECT k FROM t WHERE k REGEXP '^a'")
        assert len(result.table.to_rows()) == 2

    def test_registered_math_functions(self, backend):
        result = backend.execute(
            "SELECT FLOOR(x / 2) AS f, POWER(x, 2) AS p FROM t WHERE x = 3"
        )
        row = result.table.to_rows()[0]
        assert row["f"] == 1.0 and row["p"] == 9.0

    def test_least_greatest(self, backend):
        result = backend.execute(
            "SELECT LEAST(x, 2) AS lo, GREATEST(x, 2) AS hi FROM t WHERE x = 3"
        )
        row = result.table.to_rows()[0]
        assert row["lo"] == 2.0 and row["hi"] == 3.0

    def test_date_functions(self, backend):
        result = backend.execute(
            "SELECT YEAR(d) AS y FROM t WHERE x = 3"
        )
        assert result.table.to_rows()[0]["y"] == 2020.0

    def test_statistics_aggregates(self, backend):
        result = backend.execute(
            "SELECT MEDIAN(x) AS md, STDDEV(x) AS sd, QUANTILE(x, 0.5) AS q "
            "FROM t"
        )
        row = result.table.to_rows()[0]
        assert row["md"] == 2.0
        assert abs(row["sd"] - 1.0) < 1e-9
        assert row["q"] == 2.0

    def test_window_function(self, backend):
        result = backend.execute(
            "SELECT x, SUM(x) OVER (ORDER BY x ASC) AS run FROM t "
            "WHERE x IS NOT NULL ORDER BY x"
        )
        assert [row["run"] for row in result.table.to_rows()] == [1.0, 3.0, 6.0]

    def test_bad_sql_raises(self, backend):
        with pytest.raises(BackendError):
            backend.execute("SELECT FROM WHERE")

    def test_replace_table(self, backend):
        backend.load_table("t", Table.from_columns(x=[9.0]))
        assert backend.row_count("t") == 1


class TestRegistry:
    def test_available(self):
        assert set(available_backends()) >= {"embedded", "sqlite"}

    def test_unknown_backend(self):
        with pytest.raises(BackendError):
            create_backend("oracle")

    def test_explain_embedded(self):
        backend = EmbeddedBackend()
        backend.load_table("t", Table.from_columns(x=[1.0]))
        assert "Scan" in backend.explain("SELECT x FROM t")

    def test_explain_sqlite(self):
        backend = SQLiteBackend()
        backend.load_table("t", Table.from_columns(x=[1.0]))
        assert backend.explain("SELECT x FROM t")


class TestSQLiteSpecific:
    def test_quoted_identifiers(self):
        backend = SQLiteBackend()
        backend.load_table("t", Table.from_rows([{"air time": 5.0}]))
        result = backend.execute('SELECT "air time" AS v FROM t')
        assert result.table.to_rows() == [{"v": 5.0}]

    def test_empty_result_schema(self):
        backend = SQLiteBackend()
        backend.load_table("t", Table.from_columns(x=[1.0]))
        result = backend.execute("SELECT x FROM t WHERE x > 99")
        assert result.table.num_rows == 0


class TestExplainAnalyzeBackend:
    def test_embedded_explain_analyze(self):
        backend = EmbeddedBackend()
        backend.load_table("t", Table.from_columns(x=[1.0, 2.0, 3.0]))
        text = backend.explain_analyze("SELECT x FROM t WHERE x > 1")
        assert "rows_out=2" in text and "time=" in text
        assert "rows_in=" in text

    def test_embedded_explain_analyze_bad_sql(self):
        backend = EmbeddedBackend()
        with pytest.raises(BackendError):
            backend.explain_analyze("SELECT x FROM nope")


class TestWindowTieSemantics:
    """Running aggregates must accumulate per ROW on every backend —
    SQLite's default RANGE frame would collapse ties without the explicit
    ROWS frame the AST emits."""

    @pytest.mark.parametrize("name", ["embedded", "sqlite"])
    def test_running_sum_with_ties(self, name):
        backend = create_backend(name)
        backend.load_table(
            "t", Table.from_columns(x=[1.0, 1.0, 2.0], k=["a", "b", "c"])
        )
        from repro.engine.parser import parse_select

        select = parse_select(
            "SELECT k, SUM(x) OVER (ORDER BY x ASC) AS run FROM t"
        )
        rows = backend.execute(select.to_sql()).table.to_rows()
        runs = sorted(row["run"] for row in rows)
        assert runs == [1.0, 2.0, 4.0]  # per-row, not per-peer-group

    def test_stack_translation_with_duplicate_sort_keys(self):
        """Two rows with the same sort key in one stack partition must
        tile, not overlap, on both backends."""
        from repro.sqlgen import compose_pipeline, merge_query

        table = Table.from_columns(
            g=["p", "p", "p"], s=["x", "x", "y"], v=[2.0, 3.0, 5.0],
        )
        sql = merge_query(compose_pipeline(
            "t", ["g", "s", "v"],
            [("stack", {"groupby": ["g"], "sort": {"field": "s"},
                        "field": "v"})],
        )).to_sql()
        results = {}
        for name in ("embedded", "sqlite"):
            backend = create_backend(name)
            backend.load_table("t", table)
            result = backend.execute(sql).table
            rows = result.to_rows()
            segments = sorted((row["y0"], row["y1"]) for row in rows)
            assert segments[0][0] == 0.0
            for (a0, a1), (b0, b1) in zip(segments, segments[1:]):
                assert abs(a1 - b0) < 1e-9  # no overlaps from tie collapse
            assert segments[-1][1] == 10.0
            results[name] = canonical_table(result)
        assert rows_equivalent(results["embedded"], results["sqlite"]), \
            diff_canonical(results["embedded"], results["sqlite"],
                           "embedded", "sqlite")


class TestCrossBackendCanonical:
    """Both backends must compute canonically identical tables for
    translator-shaped SQL — compared through the same canonicalizer the
    differential fuzzer uses (column/row order and int-vs-float typing
    are presentation, not semantics)."""

    QUERIES = [
        'SELECT "k", COUNT(*) AS "n", SUM("x") AS "s" FROM "t" '
        'GROUP BY "k"',
        'SELECT "x", "k" FROM "t" WHERE COALESCE(("x" > 1), FALSE)',
        'SELECT "k", AVG("x") OVER (PARTITION BY "k") AS "m" FROM "t"',
        'SELECT MEDIAN("x") AS "md", STDDEV("x") AS "sd", '
        'VARIANCE("x") AS "var" FROM "t"',
        # Explicit NULLS placement, as the translator always emits it:
        # backend *defaults* differ (embedded: last asc, sqlite: first).
        'SELECT "k", "x", SUM("x") OVER (ORDER BY "x" ASC NULLS LAST, '
        '"k" ASC NULLS LAST '
        'ROWS BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW) AS "run" '
        'FROM "t"',
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_canonical_equality(self, sql):
        canon = {}
        for name in ("embedded", "sqlite"):
            backend = create_backend(name)
            backend.load_table(
                "t",
                Table.from_columns(
                    x=[1.0, 2.0, 3.0, None], k=["a", "b", "a", "b"],
                ),
            )
            canon[name] = canonical_table(backend.execute(sql).table)
        assert rows_equivalent(canon["embedded"], canon["sqlite"]), \
            diff_canonical(canon["embedded"], canon["sqlite"],
                           "embedded", "sqlite")
