"""AST node types for the Vega expression language.

Nodes are immutable dataclasses.  Every node supports structural equality,
which the tests and the constant folder rely on.
"""

from dataclasses import dataclass
from typing import Tuple


class Node:
    """Base class for all expression AST nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Node):
    """A constant: number (float), string, bool, or None (JS null)."""

    value: object


@dataclass(frozen=True)
class Identifier(Node):
    """A bare name: a signal reference, ``datum``, or a builtin constant."""

    name: str


@dataclass(frozen=True)
class Member(Node):
    """Property access: ``obj.prop`` or ``obj['prop']``.

    ``computed`` is True for the bracket form, in which case ``prop`` is an
    arbitrary expression; for dot access ``prop`` is a Literal string.
    """

    obj: Node
    prop: Node
    computed: bool


@dataclass(frozen=True)
class Unary(Node):
    """Prefix operator application: ``-x``, ``!x``, ``+x``, ``~x``."""

    op: str
    operand: Node


@dataclass(frozen=True)
class Binary(Node):
    """Binary operator application, including comparisons and logic."""

    op: str
    left: Node
    right: Node


@dataclass(frozen=True)
class Conditional(Node):
    """Ternary ``test ? consequent : alternate``."""

    test: Node
    consequent: Node
    alternate: Node


@dataclass(frozen=True)
class Call(Node):
    """Function call.  ``func`` is the callee name (Vega has no first-class
    functions in expressions, so the callee is always an identifier)."""

    func: str
    args: Tuple[Node, ...]


@dataclass(frozen=True)
class ArrayExpr(Node):
    """Array literal ``[a, b, c]``."""

    elements: Tuple[Node, ...]


@dataclass(frozen=True)
class ObjectExpr(Node):
    """Object literal ``{a: 1, 'b c': 2}`` — keys are plain strings."""

    keys: Tuple[str, ...]
    values: Tuple[Node, ...]


def walk(node):
    """Yield ``node`` and all of its descendants, pre-order."""
    yield node
    if isinstance(node, Member):
        yield from walk(node.obj)
        yield from walk(node.prop)
    elif isinstance(node, Unary):
        yield from walk(node.operand)
    elif isinstance(node, Binary):
        yield from walk(node.left)
        yield from walk(node.right)
    elif isinstance(node, Conditional):
        yield from walk(node.test)
        yield from walk(node.consequent)
        yield from walk(node.alternate)
    elif isinstance(node, Call):
        for arg in node.args:
            yield from walk(arg)
    elif isinstance(node, ArrayExpr):
        for element in node.elements:
            yield from walk(element)
    elif isinstance(node, ObjectExpr):
        for value in node.values:
            yield from walk(value)
