"""Load-generator determinism and accounting (repro.serve.loadgen).

Soak runs must be reproducible: the same seed yields the *same scripted
users* — identical (signal, value) event sequences — and therefore
identical issued-event counts in the BENCH_serving payload, run after
run.  Latencies are wall-clock and may differ; the event plan may not.
"""

import asyncio

from repro.metrics import MetricsRegistry
from repro.serve.loadgen import (
    LoadScenario,
    build_user_traces,
    markov_trace,
    run_default,
)
from repro.spec import flights_histogram_spec


def plan_of(traces_by_tenant):
    """The pure event plan: {tenant: [[(signal, value), ...], ...]}."""
    return {
        tenant: [
            [(step.signal, step.value) for step in trace.steps]
            for trace in traces
        ]
        for tenant, traces in traces_by_tenant.items()
    }


def test_same_seed_same_event_sequences():
    spec = flights_histogram_spec()
    kwargs = dict(tenants=["gold", "silver", "bronze"],
                  users_per_tenant=5, events_per_user=20, seed=42)
    first = build_user_traces(spec, **kwargs)
    second = build_user_traces(spec, **kwargs)
    assert plan_of(first) == plan_of(second)
    # Sanity: every user has the full event count and only spec signals.
    signals = {"binField", "maxbins"}
    for traces in first.values():
        assert len(traces) == 5
        for trace in traces:
            assert len(trace.steps) == 20
            assert {step.signal for step in trace.steps} <= signals


def test_different_seeds_differ():
    spec = flights_histogram_spec()
    kwargs = dict(tenants=["t"], users_per_tenant=4, events_per_user=25)
    assert plan_of(build_user_traces(spec, seed=1, **kwargs)) != \
        plan_of(build_user_traces(spec, seed=2, **kwargs))


def test_traces_do_not_depend_on_tenant_iteration_order():
    """Tenant identity (by sorted index), not dict order, seeds users."""
    spec = flights_histogram_spec()
    forward = build_user_traces(spec, ["a", "b"], 3, 10, seed=7)
    backward = build_user_traces(spec, ["b", "a"], 3, 10, seed=7)
    assert plan_of(forward) == plan_of(backward)


def test_markov_trace_respects_signal_bounds():
    import random

    spec = flights_histogram_spec()
    trace = markov_trace(spec, 200, random.Random(3))
    options = {"dep_delay", "arr_delay", "distance", "air_time"}
    for step in trace.steps:
        if step.signal == "maxbins":
            assert 5 <= step.value <= 100
        else:
            assert step.value in options


def test_scenario_defaults():
    scenario = LoadScenario(dashboard="flights", tenants={"t": 2})
    assert scenario.think_seconds == 0.0
    assert scenario.events_per_user > 0


def test_same_seed_same_bench_event_counts():
    """Two full in-process load runs under one seed produce identical
    issued counts — total, per tenant, and per event signal."""
    first = asyncio.run(run_default(
        rows=1_500, users_per_tenant=2, events_per_user=5, seed=9,
        registry=MetricsRegistry(),
    ))
    second = asyncio.run(run_default(
        rows=1_500, users_per_tenant=2, events_per_user=5, seed=9,
        registry=MetricsRegistry(),
    ))
    assert first["scenario"] == second["scenario"]
    assert first["totals"]["issued"] == second["totals"]["issued"]
    for tenant in first["tenants"]:
        a, b = first["tenants"][tenant], second["tenants"][tenant]
        assert a["issued"] == b["issued"]
        assert a["issued_by_event"] == b["issued_by_event"]
    # And the accounting identity holds in both runs.
    for payload in (first, second):
        totals = payload["totals"]
        assert totals["unaccounted"] == 0
        assert totals["errors"] == 0
        assert payload["server"]["unaccounted"] == 0
