"""Type system for the embedded columnar engine.

The engine has a deliberately small type lattice that matches the data
model of the Vega translation layer:

* ``DOUBLE`` — all numbers (Vega/JS has only doubles); dates are stored as
  epoch milliseconds in DOUBLE columns.
* ``VARCHAR`` — strings.
* ``BOOLEAN`` — filter results and boolean columns.

NULL is orthogonal to type: every column carries a validity mask.
"""

import enum

import numpy as np


class SQLType(enum.Enum):
    """Column data types supported by the engine."""

    DOUBLE = "DOUBLE"
    VARCHAR = "VARCHAR"
    BOOLEAN = "BOOLEAN"

    def numpy_dtype(self):
        if self is SQLType.DOUBLE:
            return np.float64
        if self is SQLType.BOOLEAN:
            return np.bool_
        return object

    @classmethod
    def from_name(cls, name):
        """Resolve a SQL type name (with common aliases) to a SQLType."""
        normalized = name.strip().upper()
        aliases = {
            "DOUBLE": cls.DOUBLE,
            "FLOAT": cls.DOUBLE,
            "REAL": cls.DOUBLE,
            "INT": cls.DOUBLE,
            "INTEGER": cls.DOUBLE,
            "BIGINT": cls.DOUBLE,
            "NUMERIC": cls.DOUBLE,
            "DECIMAL": cls.DOUBLE,
            "VARCHAR": cls.VARCHAR,
            "TEXT": cls.VARCHAR,
            "STRING": cls.VARCHAR,
            "CHAR": cls.VARCHAR,
            "BOOLEAN": cls.BOOLEAN,
            "BOOL": cls.BOOLEAN,
        }
        if normalized not in aliases:
            raise ValueError("unknown SQL type {!r}".format(name))
        return aliases[normalized]


def infer_type(values):
    """Infer the SQLType of a sequence of Python values (Nones ignored)."""
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            return SQLType.BOOLEAN
        if isinstance(value, (int, float)):
            return SQLType.DOUBLE
        if isinstance(value, str):
            return SQLType.VARCHAR
    return SQLType.DOUBLE  # all-NULL columns default to DOUBLE


def python_value_type(value):
    """SQLType of a single non-null Python scalar."""
    if isinstance(value, bool):
        return SQLType.BOOLEAN
    if isinstance(value, (int, float)):
        return SQLType.DOUBLE
    if isinstance(value, str):
        return SQLType.VARCHAR
    raise TypeError("unsupported scalar {!r}".format(value))
