"""Tests for the Vega-Lite-to-Vega compiler."""

import pytest

from repro.core import VegaPlus
from repro.datagen import generate_flights
from repro.spec import parse_spec, validate_spec
from repro.spec.model import SpecError
from repro.spec.vegalite import compile_vegalite

HISTOGRAM_VL = {
    "mark": "bar",
    "data": {"name": "flights"},
    "encoding": {
        "x": {"field": "dep_delay", "type": "quantitative",
              "bin": {"maxbins": 10}},
        "y": {"aggregate": "count", "type": "quantitative"},
    },
}

GROUPED_BAR_VL = {
    "mark": "bar",
    "data": {"name": "flights"},
    "encoding": {
        "x": {"field": "carrier", "type": "nominal"},
        "y": {"field": "dep_delay", "aggregate": "mean",
              "type": "quantitative"},
    },
}

SCATTER_VL = {
    "mark": "point",
    "data": {"name": "flights"},
    "encoding": {
        "x": {"field": "distance", "type": "quantitative"},
        "y": {"field": "air_time", "type": "quantitative"},
    },
}


class TestCompilation:
    def test_histogram_lowering(self):
        spec = compile_vegalite(HISTOGRAM_VL)
        parsed = validate_spec(parse_spec(spec))
        types = [t.type for t in parsed.dataset("table").transform]
        assert types == ["extent", "bin", "aggregate"]
        assert parsed.marks[0].type == "rect"
        assert parsed.mark_fields("table") == {"bin0", "bin1", "count"}

    def test_grouped_bar_lowering(self):
        spec = compile_vegalite(GROUPED_BAR_VL)
        parsed = validate_spec(parse_spec(spec))
        transform = parsed.dataset("table").transform
        assert [t.type for t in transform] == ["aggregate"]
        assert transform[0].params["groupby"] == ["carrier"]
        assert transform[0].params["ops"] == ["mean"]

    def test_scatter_has_no_aggregation(self):
        spec = compile_vegalite(SCATTER_VL)
        parsed = validate_spec(parse_spec(spec))
        assert parsed.dataset("table").transform == []
        assert parsed.mark_fields("table") == {"distance", "air_time"}

    def test_color_channel_becomes_groupby(self):
        vl = {
            "mark": "bar",
            "encoding": {
                "x": {"field": "carrier", "type": "nominal"},
                "y": {"aggregate": "count"},
                "color": {"field": "origin", "type": "nominal"},
            },
        }
        spec = compile_vegalite(vl, dataset_name="flights")
        parsed = validate_spec(parse_spec(spec))
        groupby = parsed.dataset("table").transform[0].params["groupby"]
        assert groupby == ["carrier", "origin"]

    def test_filter_transform_lowered(self):
        vl = dict(HISTOGRAM_VL)
        vl["transform"] = [{"filter": "datum.dep_delay > 0"}]
        parsed = validate_spec(parse_spec(compile_vegalite(vl)))
        types = [t.type for t in parsed.dataset("table").transform]
        assert types == ["filter", "extent", "bin", "aggregate"]

    def test_calculate_transform_lowered(self):
        vl = dict(SCATTER_VL)
        vl["transform"] = [
            {"calculate": "datum.distance / 60", "as": "hours"}
        ]
        parsed = validate_spec(parse_spec(compile_vegalite(vl)))
        assert parsed.dataset("table").transform[0].type == "formula"

    def test_timeunit_lowered(self):
        vl = {
            "mark": "line",
            "encoding": {
                "x": {"field": "date_ms", "timeUnit": "year",
                      "type": "temporal"},
                "y": {"aggregate": "count"},
            },
        }
        parsed = validate_spec(parse_spec(
            compile_vegalite(vl, dataset_name="flights")
        ))
        types = [t.type for t in parsed.dataset("table").transform]
        assert types == ["timeunit", "aggregate"]


class TestErrors:
    def test_unsupported_mark(self):
        with pytest.raises(SpecError):
            compile_vegalite({"mark": "geoshape", "encoding": {
                "x": {"field": "a"}, "y": {"field": "b"}}})

    def test_missing_encoding(self):
        with pytest.raises(SpecError):
            compile_vegalite({"mark": "bar"})

    def test_missing_positional(self):
        with pytest.raises(SpecError):
            compile_vegalite({"mark": "bar", "encoding": {
                "x": {"field": "a"}}})

    def test_unsupported_aggregate(self):
        with pytest.raises(SpecError):
            compile_vegalite({"mark": "bar", "encoding": {
                "x": {"field": "a"},
                "y": {"aggregate": "argmax", "field": "b"}}})

    def test_object_filter_rejected(self):
        vl = dict(HISTOGRAM_VL)
        vl["transform"] = [{"filter": {"field": "x", "gt": 0}}]
        with pytest.raises(SpecError):
            compile_vegalite(vl)


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def flights(self):
        return generate_flights(20000)

    def test_histogram_through_optimizer(self, flights):
        session = VegaPlus(
            compile_vegalite(HISTOGRAM_VL), data={"flights": flights},
        )
        result = session.startup()
        # The whole VL-derived pipeline offloads to the server.
        assert session.plan.datasets["table"].cut == 3
        total = sum(row["count"] for row in result.datasets["table"])
        assert total == flights.num_rows

    def test_grouped_bar_matches_sql(self, flights):
        session = VegaPlus(
            compile_vegalite(GROUPED_BAR_VL), data={"flights": flights},
        )
        result = session.startup()
        rows = {row["carrier"]: row["mean_dep_delay"]
                for row in result.datasets["table"]}
        check = session.backend.execute(
            'SELECT carrier, AVG(dep_delay) AS m FROM flights '
            'GROUP BY carrier'
        ).table.to_rows()
        for row in check:
            assert abs(rows[row["carrier"]] - row["m"]) < 1e-9

    def test_vl_and_vega_agree(self, flights):
        from repro.spec import flights_histogram_spec

        vl_session = VegaPlus(
            compile_vegalite(HISTOGRAM_VL), data={"flights": flights},
        )
        vl_rows = vl_session.startup().datasets["table"]
        vega_session = VegaPlus(
            flights_histogram_spec(maxbins=10), data={"flights": flights},
        )
        vega_rows = vega_session.startup().datasets["binned"]

        def canon(rows):
            return sorted(
                ((row["bin0"] is None, row["bin0"]), row["count"])
                for row in rows
            )

        assert canon(vl_rows) == canon(vega_rows)


class TestBinnedColorHistogram:
    def test_bin_plus_color_groupby(self):
        vl = {
            "mark": "bar",
            "encoding": {
                "x": {"field": "dep_delay", "type": "quantitative",
                      "bin": True},
                "y": {"aggregate": "count"},
                "color": {"field": "carrier", "type": "nominal"},
            },
        }
        spec = compile_vegalite(vl, dataset_name="flights")
        parsed = validate_spec(parse_spec(spec))
        aggregate = parsed.dataset("table").transform[-1]
        assert aggregate.params["groupby"] == ["bin0", "bin1", "carrier"]

    def test_bin_plus_color_executes(self):
        vl = {
            "mark": "bar",
            "encoding": {
                "x": {"field": "dep_delay", "type": "quantitative",
                      "bin": {"maxbins": 5}},
                "y": {"aggregate": "count"},
                "color": {"field": "carrier", "type": "nominal"},
            },
        }
        flights = generate_flights(5000)
        session = VegaPlus(
            compile_vegalite(vl, dataset_name="flights"),
            data={"flights": flights},
        )
        result = session.startup()
        rows = result.datasets["table"]
        assert sum(row["count"] for row in rows) == 5000
        assert len({row["carrier"] for row in rows}) == 10
