"""Unit tests for the expression parser (precedence, associativity, forms)."""

import pytest

from repro.expr import ast
from repro.expr.errors import ExprSyntaxError
from repro.expr.parser import parse


def lit(value):
    return ast.Literal(value)


class TestPrecedence:
    def test_multiplication_binds_tighter_than_addition(self):
        assert parse("1+2*3") == ast.Binary(
            "+", lit(1.0), ast.Binary("*", lit(2.0), lit(3.0))
        )

    def test_parentheses_override(self):
        assert parse("(1+2)*3") == ast.Binary(
            "*", ast.Binary("+", lit(1.0), lit(2.0)), lit(3.0)
        )

    def test_comparison_below_arithmetic(self):
        node = parse("a+1 < b*2")
        assert isinstance(node, ast.Binary) and node.op == "<"

    def test_logical_and_below_comparison(self):
        node = parse("a < b && c > d")
        assert node.op == "&&"

    def test_or_below_and(self):
        node = parse("a && b || c")
        assert node.op == "||"
        assert node.left.op == "&&"

    def test_ternary_lowest(self):
        node = parse("a || b ? 1 : 2")
        assert isinstance(node, ast.Conditional)
        assert node.test.op == "||"

    def test_unary_binds_tighter_than_binary(self):
        node = parse("-a * b")
        assert node.op == "*"
        assert isinstance(node.left, ast.Unary)

    def test_bitwise_between_logic_and_equality(self):
        node = parse("a == b & c == d")
        assert node.op == "&"


class TestAssociativity:
    def test_subtraction_left_associative(self):
        node = parse("10 - 3 - 2")
        assert node == ast.Binary(
            "-", ast.Binary("-", lit(10.0), lit(3.0)), lit(2.0)
        )

    def test_exponent_right_associative(self):
        node = parse("2 ** 3 ** 2")
        assert node == ast.Binary(
            "**", lit(2.0), ast.Binary("**", lit(3.0), lit(2.0))
        )

    def test_ternary_right_associative(self):
        node = parse("a ? 1 : b ? 2 : 3")
        assert isinstance(node.alternate, ast.Conditional)


class TestForms:
    def test_member_dot(self):
        node = parse("datum.price")
        assert node == ast.Member(
            ast.Identifier("datum"), lit("price"), computed=False
        )

    def test_member_bracket(self):
        node = parse("datum['unit price']")
        assert node == ast.Member(
            ast.Identifier("datum"), lit("unit price"), computed=True
        )

    def test_chained_member(self):
        node = parse("a.b.c")
        assert isinstance(node.obj, ast.Member)

    def test_call_no_args(self):
        assert parse("now()") == ast.Call("now", ())

    def test_call_with_args(self):
        node = parse("clamp(x, 0, 10)")
        assert node.func == "clamp"
        assert len(node.args) == 3

    def test_nested_calls(self):
        node = parse("max(abs(a), abs(b))")
        assert all(isinstance(arg, ast.Call) for arg in node.args)

    def test_array_literal(self):
        node = parse("[1, 2, 3]")
        assert node == ast.ArrayExpr((lit(1.0), lit(2.0), lit(3.0)))

    def test_empty_array(self):
        assert parse("[]") == ast.ArrayExpr(())

    def test_object_literal(self):
        node = parse("{a: 1, 'b c': 2}")
        assert node.keys == ("a", "b c")

    def test_keyword_literals(self):
        assert parse("true") == lit(True)
        assert parse("false") == lit(False)
        assert parse("null") == lit(None)

    def test_strict_equality_ops(self):
        assert parse("a === b").op == "==="
        assert parse("a !== b").op == "!=="

    def test_call_on_member_rejected(self):
        with pytest.raises(ExprSyntaxError):
            parse("datum.f()")


class TestErrors:
    @pytest.mark.parametrize("source", [
        "1 +",
        "(1",
        "[1, 2",
        "a ? b",
        "a.",
        "a.1",
        "{a}",
        ", a",
        "1 2",
        "",
    ])
    def test_syntax_errors(self, source):
        with pytest.raises(ExprSyntaxError):
            parse(source)

    def test_trailing_garbage(self):
        with pytest.raises(ExprSyntaxError):
            parse("a + b c")
