"""Seeded generation of datasets with nasty value distributions.

The point is not realism but coverage of the value-space corners where
client (JS-semantics) and server (SQL-semantics) executions historically
diverge: NULLs, NaN (which the engine's data model folds into NULL),
empty tables, heavy duplicate keys, negative and tiny/huge magnitudes,
``-0.0``, empty/unicode/quote-bearing strings.
"""

from dataclasses import dataclass
from typing import Dict

#: string category pool: duplicates guaranteed, plus unicode, an empty
#: string, embedded single/double quotes, and numeric look-alikes
CATEGORY_POOL = [
    "a", "b", "cc", "", "α-β", "ñandú", "日本語", "O'Brien", 'q"q',
    "z z", "-1", "NaN",
]

#: numeric pool skewed toward collisions and edge magnitudes
NUMERIC_POOL = [
    0.0, -0.0, 1.0, -1.0, 2.0, 3.0, -1.5, 0.5, 42.0, -273.15,
    3.14159265358979, 1e-9, -1e-9, 123456.789, -98765.4321, 1e12,
]


@dataclass
class ColumnMeta:
    """What the spec generator may assume about a generated column."""

    kind: str  # "num" | "str"
    nullable: bool = False
    unique: bool = False


def _numeric_value(rng, null_p, nan_p, inf_p):
    roll = rng.random()
    if roll < null_p:
        return None
    if roll < null_p + nan_p:
        return float("nan")
    if roll < null_p + nan_p + inf_p:
        return rng.choice([float("inf"), float("-inf")])
    if rng.random() < 0.5:
        # Small-domain integers: duplicate-heavy group keys.
        return float(rng.randint(-3, 6))
    return rng.choice(NUMERIC_POOL) * rng.choice([1.0, 1.0, 1.0, 10.0])


def _string_value(rng, null_p):
    if rng.random() < null_p:
        return None
    return rng.choice(CATEGORY_POOL)


def random_table(rng, max_rows=40, include_inf=False):
    """Generate (rows, meta): a nasty table plus per-column metadata.

    Always includes ``uid`` (unique, non-null numeric) so order-sensitive
    transforms (stack, window) can sort deterministically, at least one
    more numeric column, and at least one string column.
    """
    shape_roll = rng.random()
    if shape_roll < 0.06:
        n_rows = 0  # empty table
    elif shape_roll < 0.14:
        n_rows = 1
    else:
        n_rows = rng.randint(2, max_rows)

    meta: Dict[str, ColumnMeta] = {"uid": ColumnMeta("num", unique=True)}
    columns = {"uid": [float(index) for index in range(n_rows)]}

    inf_p = 0.03 if include_inf else 0.0
    for index in range(rng.randint(1, 3)):
        name = "n{}".format(index)
        profile = rng.random()
        if profile < 0.08:
            null_p, nan_p = 1.0, 0.0  # all-NULL column
        elif profile < 0.5:
            null_p, nan_p = 0.2, 0.1
        else:
            null_p, nan_p = 0.0, 0.0
        columns[name] = [
            _numeric_value(rng, null_p, nan_p, inf_p) for _ in range(n_rows)
        ]
        meta[name] = ColumnMeta("num", nullable=(null_p + nan_p + inf_p) > 0)

    for index in range(rng.randint(1, 2)):
        name = "k{}".format(index)
        null_p = rng.choice([0.0, 0.0, 0.25])
        columns[name] = [_string_value(rng, null_p) for _ in range(n_rows)]
        meta[name] = ColumnMeta("str", nullable=null_p > 0)

    rows = [
        {name: values[row_index] for name, values in columns.items()}
        for row_index in range(n_rows)
    ]
    return rows, meta


def random_lookup_table(rng):
    """A small dimension table with unique string keys.

    Keys are unique by construction: the client lookup transform keeps
    the *first* match per key while a SQL LEFT JOIN would duplicate rows,
    so duplicate-key lookup tables are a known, documented divergence the
    generator avoids (see docs/TESTING.md).
    """
    size = rng.randint(1, len(CATEGORY_POOL))
    keys = rng.sample(CATEGORY_POOL, size)
    rows = []
    for key in keys:
        rows.append({
            "key": key,
            "v_num": _numeric_value(rng, 0.2, 0.1, 0.0),
            "v_str": _string_value(rng, 0.2),
        })
    meta = {
        "key": ColumnMeta("str", unique=True),
        "v_num": ColumnMeta("num", nullable=True),
        "v_str": ColumnMeta("str", nullable=True),
    }
    return rows, meta
