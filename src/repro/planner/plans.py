"""Plan data structures for client/server partitioning.

A plan assigns each dataset pipeline a *cut*: the number of leading
transform steps executed on the server.  Data crosses the network exactly
once per pipeline, at the cut — the same "when to bring the dataflow back
to the client-side" framing as the paper (§2.2 step 2).
"""

from dataclasses import dataclass, field
from typing import Dict, List

CLIENT = "client"
SERVER = "server"


@dataclass
class CostBreakdown:
    """Estimated (or measured) latency decomposition in seconds —
    the data behind the performance view's stacked bars (Figure 3)."""

    server: float = 0.0
    network: float = 0.0
    client: float = 0.0
    render: float = 0.0

    @property
    def total(self):
        return self.server + self.network + self.client + self.render

    def __add__(self, other):
        return CostBreakdown(
            server=self.server + other.server,
            network=self.network + other.network,
            client=self.client + other.client,
            render=self.render + other.render,
        )

    def as_dict(self):
        return {
            "server": self.server,
            "network": self.network,
            "client": self.client,
            "render": self.render,
            "total": self.total,
        }


@dataclass
class DatasetPlan:
    """Partitioning decision for one dataset pipeline."""

    dataset: str
    #: number of leading steps on the server (0 = raw data shipped)
    cut: int
    #: largest legal cut (SQL-translatable prefix length)
    max_cut: int
    #: estimated cost under this cut
    estimate: CostBreakdown = field(default_factory=CostBreakdown)
    #: estimated rows crossing the network at the cut
    transfer_rows: float = 0.0
    #: estimated bytes crossing the network at the cut
    transfer_bytes: float = 0.0

    def placement(self, step_index):
        return SERVER if step_index < self.cut else CLIENT


@dataclass
class PartitionPlan:
    """A complete partitioning across all dataset pipelines."""

    label: str
    datasets: Dict[str, DatasetPlan] = field(default_factory=dict)

    @property
    def estimate(self):
        total = CostBreakdown()
        for plan in self.datasets.values():
            total = total + plan.estimate
        return total

    def describe(self):
        """Human-readable plan summary for the dashboard."""
        lines = ["plan {!r} (est. {:.4f}s)".format(self.label, self.estimate.total)]
        for name, plan in sorted(self.datasets.items()):
            lines.append(
                "  {}: cut={}/{} (transfer ~{} rows, ~{} bytes)".format(
                    name, plan.cut, plan.max_cut,
                    int(plan.transfer_rows), int(plan.transfer_bytes),
                )
            )
        return "\n".join(lines)


def all_client_plan(pipelines_steps):
    """The Vega baseline: every step on the client, raw data shipped."""
    plan = PartitionPlan(label="vega-client")
    for dataset, steps in pipelines_steps.items():
        plan.datasets[dataset] = DatasetPlan(
            dataset=dataset, cut=0, max_cut=len(steps)
        )
    return plan
