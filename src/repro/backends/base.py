"""Backend interface: the middleware's view of a DBMS.

The paper's middleware supports multiple DBMS back-ends (PostgreSQL,
OmniSciDB, DuckDB).  This reproduction keeps the same pluggable boundary:
everything above talks SQL text to a :class:`Backend` and receives engine
:class:`~repro.engine.table.Table` results plus wall-clock timings.
"""

import abc
import time
from dataclasses import dataclass

from repro.engine.table import Table


@dataclass
class QueryResult:
    """A backend response: the rows plus the measured server time."""

    table: Table
    seconds: float
    sql: str


class BackendError(Exception):
    """A backend failed to load data or execute a query."""


class Backend(abc.ABC):
    """Abstract DBMS adapter."""

    #: human-readable backend name ("embedded", "sqlite")
    name = "abstract"

    @abc.abstractmethod
    def load_table(self, name, table):
        """Register ``table`` (engine Table) under ``name``."""

    @abc.abstractmethod
    def execute(self, sql):
        """Run a SELECT; returns :class:`QueryResult`."""

    @abc.abstractmethod
    def table_names(self):
        """Names of loaded tables."""

    @abc.abstractmethod
    def row_count(self, name):
        """Row count of a loaded table."""

    def explain(self, sql):
        """Optional: backend plan text (default: unsupported note)."""
        return "(no EXPLAIN support in backend {!r})".format(self.name)

    def execute_with_node_stats(self, sql):
        """Run a SELECT and, when the backend supports it, also return
        per-plan-node EXPLAIN ANALYZE rows.

        Returns ``(QueryResult, nodes_or_None)`` where nodes is the
        pre-order list of dicts produced by the embedded engine's
        ``explain_analyze_data`` (label, depth, parent, rows_in,
        rows_out, seconds).  The default falls back to a plain execute
        with ``None`` stats, so tracing degrades gracefully on backends
        without plan instrumentation.
        """
        return self.execute(sql), None

    def table_schema(self, name):
        """Optional: ((column, SQLType), ...) of a loaded table, or None
        when the backend cannot report types."""
        return None

    def _timed(self, fn, sql):
        start = time.perf_counter()
        table = fn()
        elapsed = time.perf_counter() - start
        return QueryResult(table=table, seconds=elapsed, sql=sql)
