"""Data-plane tests: the columnar interchange contract.

Three guarantees the batch refactor must keep:

* **Back-compat** — every transform produces byte-identical row output
  (dict key order, NULL/NaN handling included) whether it ran the
  vectorized batch kernel or the row-at-a-time reference path, and the
  lazy ``Pulse.rows`` view is safe to mutate without corrupting the
  shared batch.
* **No row trips on the happy path** — the server -> cache -> client
  request path never converts batch -> rows -> batch; asserted directly
  against the module sources so a regression is caught even if it only
  costs performance, not correctness.
* **Passthrough is observable** — a traced session counts
  ``data.batch_passthrough`` / ``data.rows_materialized`` so fallbacks
  are visible in telemetry, not silent.
"""

import math

import pytest

from repro.core import VegaPlus
from repro.data import Column, ColumnBatch, SQLType, Table
from repro.dataflow.pulse import Pulse
from repro.dataflow.transforms import create_transform
from repro.datagen import generate_flights
from repro.spec import flights_histogram_spec


ROWS = [
    {"a": 1.0, "b": "x", "c": None},
    {"a": float("nan"), "b": "y", "c": 2.0},
    {"a": -3.5, "b": None, "c": 4.0},
    {"a": 7.0, "b": "x", "c": None},
    {"a": 7.0, "b": "y", "c": 0.5},
]

#: (spec type, params) — covers every vectorized transform plus a
#: deliberately unvectorizable case (VARCHAR min) to exercise fallback.
TRANSFORM_CASES = [
    ("filter", {"expr": "datum.a > 0"}),
    ("filter", {"expr": "datum.b == 'x'"}),
    ("formula", {"expr": "datum.a * 2 + 1", "as": "d"}),
    ("formula", {"expr": "clamp(datum.c, -1, 3)", "as": "cc"}),
    ("project", {"fields": ["b", "a"], "as": ["key", "val"]}),
    ("extent", {"field": "a", "signal": "e"}),
    ("bin", {"field": "a", "extent": [-4.0, 8.0], "maxbins": 6}),
    ("aggregate", {"groupby": ["b"], "ops": ["count", "mean", "min"],
                   "fields": [None, "a", "c"]}),
    ("aggregate", {"groupby": [], "ops": ["sum", "distinct"],
                   "fields": ["a", "b"]}),
    ("aggregate", {"groupby": ["b"], "ops": ["min"], "fields": ["b"]}),
    ("collect", {"sort": {"field": ["a"], "order": ["descending"]}}),
]


def _assert_rows_identical(got, expected):
    """Exact row-view equality: length, dict key order, values — with
    NaN counted equal to NaN (it compares unequal to itself) and bools
    kept distinct from the numerically equal 0/1 floats."""
    assert len(got) == len(expected)
    for row_got, row_expected in zip(got, expected):
        assert list(row_got.keys()) == list(row_expected.keys())
        for key, expected_value in row_expected.items():
            value = row_got[key]
            both_nan = (
                isinstance(value, float) and isinstance(expected_value, float)
                and math.isnan(value) and math.isnan(expected_value)
            )
            if both_nan:
                continue
            assert value == expected_value, (key, value, expected_value)
            assert isinstance(value, bool) == isinstance(expected_value, bool)


class TestTransformBackCompat:
    """Batch kernel output == row-path output, for every transform."""

    @pytest.mark.parametrize("spec_type,params", TRANSFORM_CASES)
    def test_batch_and_row_paths_agree(self, spec_type, params):
        batch = ColumnBatch.from_rows(ROWS)
        # Both paths must see identical inputs: the batch form folds NaN
        # into NULL, so the row path starts from the batch's row view.
        input_rows = batch.to_rows()

        columnar = create_transform(spec_type, spec_type, dict(params), None)
        columnar.columnar = True
        out_batch = columnar.run(Pulse(batch=batch), dict(params), {})

        rowwise = create_transform(spec_type, spec_type, dict(params), None)
        rowwise.columnar = False
        out_rows = rowwise.run(
            Pulse(rows=[dict(r) for r in input_rows]), dict(params), {})

        _assert_rows_identical(out_batch.rows, out_rows.rows)
        if out_rows.value is not None or out_batch.value is not None:
            assert out_batch.value == out_rows.value

    def test_empty_input_agrees(self):
        for spec_type, params in TRANSFORM_CASES:
            empty = ColumnBatch.from_rows([dict(r) for r in ROWS]).head(0)
            columnar = create_transform(
                spec_type, spec_type, dict(params), None)
            columnar.columnar = True
            out_batch = columnar.run(Pulse(batch=empty), dict(params), {})
            rowwise = create_transform(
                spec_type, spec_type, dict(params), None)
            rowwise.columnar = False
            out_rows = rowwise.run(Pulse(rows=[]), dict(params), {})
            _assert_rows_identical(out_batch.rows, out_rows.rows)


class TestPulseLazyRowView:
    def test_num_rows_does_not_materialize(self):
        pulse = Pulse(batch=ColumnBatch.from_rows(ROWS))
        assert pulse.num_rows == len(ROWS)
        assert not pulse.materialized

    def test_row_view_is_cached(self):
        pulse = Pulse(batch=ColumnBatch.from_rows(ROWS))
        first = pulse.rows
        assert pulse.materialized
        assert pulse.rows is first

    def test_mutating_row_view_leaves_batch_intact(self):
        batch = ColumnBatch.from_rows(ROWS)
        pulse = Pulse(batch=batch)
        rows = pulse.rows
        rows[0]["a"] = 999.0
        rows.pop()
        # the batch (shared with other consumers) is untouched
        assert batch.num_rows == len(ROWS)
        assert batch.row(0)["a"] == 1.0

    def test_unchanged_and_with_value_share_data(self):
        batch = ColumnBatch.from_rows(ROWS)
        pulse = Pulse(batch=batch)
        assert Pulse.unchanged(pulse).batch is batch
        assert not Pulse.unchanged(pulse).changed
        valued = pulse.with_value([1, 2])
        assert valued.batch is batch
        assert valued.value == [1, 2]


class TestNoRowTripsOnHappyPath:
    """The grep assertion from the issue: the server -> cache -> client
    path carries batches, never converting through dict rows."""

    @pytest.mark.parametrize("module_name", [
        "repro.core.executors",
        "repro.backends.sqlite",
        "repro.net.payload",
    ])
    def test_request_path_modules_never_convert(self, module_name):
        import importlib
        import inspect

        module = importlib.import_module(module_name)
        source = inspect.getsource(module)
        assert "to_rows(" not in source, module_name
        assert "from_rows(" not in source, module_name

    def test_cache_converts_only_in_lazy_accessors(self):
        import inspect

        from repro.core import cache

        # CacheEntry materializes rows only in the lazy `.rows` view and
        # builds a batch only in the `rows=`-constructor back-compat
        # path; ResultCache itself never converts.
        assert "to_rows(" not in inspect.getsource(cache.ResultCache)
        assert "from_rows(" not in inspect.getsource(cache.ResultCache)
        entry_source = inspect.getsource(cache.CacheEntry)
        assert entry_source.count("to_rows(") == 1   # CacheEntry.rows
        assert entry_source.count("from_rows(") == 1  # CacheEntry.as_batch


class TestPassthroughTelemetry:
    def _session(self, columnar):
        session = VegaPlus(
            flights_histogram_spec(),
            data={"flights": generate_flights(500)},
            latency_ms=0.0,
            bandwidth_mbps=100000.0,
            trace=True,
            columnar=columnar,
        )
        session.startup()
        session.run_client_only()
        return session

    def test_columnar_session_counts_passthrough(self):
        counters = self._session(columnar=True).tracer.counters
        assert counters["data.batch_passthrough"].value > 0

    def test_rowwise_session_counts_materialization(self):
        counters = self._session(columnar=False).tracer.counters
        assert counters.get("data.batch_passthrough") is None \
            or counters["data.batch_passthrough"].value == 0
        assert counters["data.rows_materialized"].value > 0

    def test_columnar_modes_agree_end_to_end(self):
        results = {}
        for columnar in (True, False):
            session = self._session(columnar)
            name = next(iter(session.optimize().datasets))
            results[columnar] = session.results(name)
        _assert_rows_identical(results[True], results[False])


class TestDataPackage:
    def test_table_is_the_batch(self):
        assert Table is ColumnBatch
        from repro.engine import Table as EngineTable
        from repro.engine.table import ColumnBatch as EngineBatch

        assert EngineTable is ColumnBatch
        assert EngineBatch is ColumnBatch

    def test_from_values_folds_nan_to_null(self):
        column = Column.from_values([1.0, float("nan"), None, 2.5])
        assert column.type is SQLType.DOUBLE
        assert column.to_list() == [1.0, None, None, 2.5]
        assert column.null_count() == 2

    def test_round_trip_preserves_key_order(self):
        batch = ColumnBatch.from_rows(ROWS)
        assert batch.column_names == ["a", "b", "c"]
        assert [list(row.keys()) for row in batch.to_rows()] == \
            [["a", "b", "c"]] * len(ROWS)

    def test_set_column_copies_are_independent(self):
        batch = ColumnBatch.from_rows(ROWS)
        derived = batch.select(["a", "b"])
        derived.set_column("a", Column.constant(0.0, batch.num_rows))
        assert batch.column("a").to_list()[0] == 1.0
