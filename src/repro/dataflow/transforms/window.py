"""Window transform (Vega `window`)."""

from repro.dataflow.transforms.aggops import AGG_OPS, group_rows
from repro.dataflow.transforms.base import (
    Transform,
    TransformError,
    register_transform,
)
from repro.dataflow.transforms.basic import sort_rows

_RANK_OPS = {"row_number", "rank", "dense_rank"}
_OFFSET_OPS = {"lag", "lead"}


@register_transform("window")
class WindowTransform(Transform):
    """Per-group running/rank/offset calculations (Vega `window`).

    Supports rank ops (row_number, rank, dense_rank), lag/lead, and all
    aggregate ops as running aggregates over the default frame
    ``[null, 0]`` (start of partition to current row) or the full
    partition with frame ``[null, null]``.
    """

    def transform(self, rows, params, signals):
        groupby = params.get("groupby") or []
        ops = params.get("ops") or []
        fields = params.get("fields") or [None] * len(ops)
        names = params.get("as") or [None] * len(ops)
        window_params = params.get("params") or [None] * len(ops)
        frame = params.get("frame", [None, 0])

        sort = params.get("sort") or {}
        sort_fields = sort.get("field") or []
        if isinstance(sort_fields, str):
            sort_fields = [sort_fields]
        sort_orders = sort.get("order")
        if isinstance(sort_orders, str):
            sort_orders = [sort_orders]
        if sort_orders is None:
            sort_orders = ["ascending"] * len(sort_fields)

        measures = []
        for index, op in enumerate(ops):
            field = fields[index] if index < len(fields) else None
            name = names[index] if index < len(names) else None
            extra = window_params[index] if index < len(window_params) else None
            if name is None:
                name = op if field is None else "{}_{}".format(op, field)
            measures.append((op, field, name, extra))

        order, groups = group_rows(rows, groupby)
        result_map = {}
        for key in order:
            members = groups[key]
            if sort_fields:
                members = sort_rows(members, sort_fields, sort_orders)
            for op, field, name, extra in measures:
                values = self._compute(op, field, extra, members, sort_fields, frame)
                for row, value in zip(members, values):
                    result_map.setdefault(id(row), {})[name] = value

        out = []
        for row in rows:
            derived = dict(row)
            derived.update(result_map.get(id(row), {}))
            out.append(derived)
        return out

    def _compute(self, op, field, extra, members, sort_fields, frame):
        count = len(members)
        if op == "row_number":
            return [float(index + 1) for index in range(count)]
        if op in ("rank", "dense_rank"):
            return self._ranks(op, members, sort_fields)
        if op in _OFFSET_OPS:
            offset = int(extra) if extra is not None else 1
            shift = offset if op == "lag" else -offset
            out = []
            for index in range(count):
                source = index - shift
                if 0 <= source < count:
                    out.append(members[source].get(field))
                else:
                    out.append(None)
            return out
        fn = AGG_OPS.get(op)
        if fn is None:
            raise TransformError("unknown window op {!r}".format(op))
        running = not (frame[0] is None and frame[1] is None)
        values = [
            row.get(field) if field is not None else row for row in members
        ]
        if not running:
            total = fn(values)
            return [total] * count
        return [fn(values[: index + 1]) for index in range(count)]

    def _ranks(self, op, members, sort_fields):
        out = []
        rank = 0
        dense = 0
        previous = object()
        for index, row in enumerate(members):
            key = tuple(row.get(field) for field in sort_fields)
            if key != previous:
                dense += 1
                rank = index + 1
                previous = key
            out.append(float(rank if op == "rank" else dense))
        return out
