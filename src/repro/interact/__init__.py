"""Scripted interaction traces, replay, and event routing."""

from repro.interact.events import Event, EventError, EventHandler, EventRouter
from repro.interact.trace import (
    InteractionStep,
    InteractionTrace,
    ReplayReport,
    interleave,
    option_cycle,
    replay,
    slider_drag,
)

__all__ = [
    "Event",
    "EventError",
    "EventHandler",
    "EventRouter",
    "InteractionStep",
    "InteractionTrace",
    "ReplayReport",
    "interleave",
    "option_cycle",
    "replay",
    "slider_drag",
]
