"""Catalog: named tables plus per-table statistics.

Statistics feed two consumers: the engine's own EXPLAIN output, and the
VegaPlus partition planner's cardinality/transfer-size estimates
(:mod:`repro.planner.cardinality`).
"""

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.engine.errors import CatalogError
from repro.engine.table import Table
from repro.engine.types import SQLType

_DISTINCT_SAMPLE = 100_000


@dataclass
class ColumnStats:
    """Summary statistics for one column."""

    type: SQLType
    null_count: int
    distinct_estimate: int
    min_value: Optional[float] = None
    max_value: Optional[float] = None
    avg_width: float = 8.0


@dataclass
class TableStats:
    """Summary statistics for one table."""

    row_count: int
    columns: Dict[str, ColumnStats] = field(default_factory=dict)

    def row_width(self):
        """Estimated bytes per row across all columns."""
        return sum(stats.avg_width for stats in self.columns.values())


def compute_stats(table):
    """Compute TableStats by scanning (sampling distincts on huge tables)."""
    stats = TableStats(row_count=table.num_rows)
    for name, column in table.columns.items():
        valid_data = column.data[column.valid]
        if len(valid_data) > _DISTINCT_SAMPLE:
            sample = valid_data[:_DISTINCT_SAMPLE]
            scale = len(valid_data) / _DISTINCT_SAMPLE
            distinct = int(min(len(valid_data), len(np.unique(sample)) * scale**0.5))
        else:
            distinct = int(len(np.unique(valid_data))) if len(valid_data) else 0
        min_value = max_value = None
        avg_width = 8.0
        if column.type is SQLType.DOUBLE and len(valid_data):
            min_value = float(valid_data.min())
            max_value = float(valid_data.max())
        elif column.type is SQLType.VARCHAR:
            if len(valid_data):
                sample = valid_data[:_DISTINCT_SAMPLE]
                avg_width = float(
                    sum(len(value) for value in sample) / len(sample)
                )
            else:
                avg_width = 0.0
        elif column.type is SQLType.BOOLEAN:
            avg_width = 1.0
        stats.columns[name] = ColumnStats(
            type=column.type,
            null_count=column.null_count(),
            distinct_estimate=distinct,
            min_value=min_value,
            max_value=max_value,
            avg_width=avg_width,
        )
    return stats


class Catalog:
    """Named tables with lazily computed statistics."""

    def __init__(self):
        self._tables = {}
        self._stats = {}

    def create(self, name, table, replace=False):
        if name in self._tables and not replace:
            raise CatalogError("table {!r} already exists".format(name))
        if not isinstance(table, Table):
            raise CatalogError("expected a Table, got {!r}".format(type(table)))
        self._tables[name] = table
        self._stats.pop(name, None)

    def drop(self, name):
        if name not in self._tables:
            raise CatalogError("unknown table {!r}".format(name))
        del self._tables[name]
        self._stats.pop(name, None)

    def get(self, name):
        if name not in self._tables:
            raise CatalogError("unknown table {!r}".format(name))
        return self._tables[name]

    def has(self, name):
        return name in self._tables

    def names(self):
        return sorted(self._tables)

    def stats(self, name):
        if name not in self._stats:
            self._stats[name] = compute_stats(self.get(name))
        return self._stats[name]

    def invalidate_stats(self, name):
        self._stats.pop(name, None)
