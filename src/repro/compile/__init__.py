"""Spec-to-dataflow compiler."""

from repro.compile.compiler import CompiledSpec, compile_spec

__all__ = ["CompiledSpec", "compile_spec"]
