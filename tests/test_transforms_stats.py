"""Tests for the statistical transforms (density, quantile, regression)."""

import math

import pytest

from repro.dataflow.transforms import TransformError, create_transform
from repro.dataflow.transforms.stats import gaussian_kde


def apply(spec_type, params, rows):
    transform = create_transform(spec_type, "t", params, None)
    return transform.transform(rows, params, {})


class TestGaussianKde:
    def test_integrates_to_one(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        lo, hi, steps = -10.0, 20.0, 600
        step = (hi - lo) / steps
        points = [lo + i * step for i in range(steps + 1)]
        densities = gaussian_kde(values, points)
        integral = sum(densities) * step
        assert abs(integral - 1.0) < 0.02

    def test_peak_near_mode(self):
        values = [5.0] * 50 + [20.0]
        points = [float(p) for p in range(0, 26)]
        densities = gaussian_kde(values, points)
        assert points[densities.index(max(densities))] == 5.0

    def test_empty_values(self):
        assert gaussian_kde([], [0.0, 1.0]) == [0.0, 0.0]

    def test_explicit_bandwidth(self):
        narrow = gaussian_kde([0.0], [0.0], bandwidth=0.1)
        wide = gaussian_kde([0.0], [0.0], bandwidth=10.0)
        assert narrow[0] > wide[0]


class TestDensityTransform:
    ROWS = [{"v": float(i % 10), "g": "ab"[i % 2]} for i in range(100)]

    def test_emits_steps_points(self):
        out = apply("density", {"field": "v", "steps": 50}, self.ROWS)
        assert len(out) == 50
        assert all({"value", "density"} <= set(row) for row in out)

    def test_groupby(self):
        out = apply(
            "density", {"field": "v", "groupby": ["g"], "steps": 20},
            self.ROWS,
        )
        assert len(out) == 40
        assert {row["g"] for row in out} == {"a", "b"}

    def test_extent_respected(self):
        out = apply(
            "density",
            {"field": "v", "steps": 10, "extent": [0, 100]},
            self.ROWS,
        )
        assert out[0]["value"] == 0.0
        assert out[-1]["value"] == 100.0

    def test_requires_field(self):
        with pytest.raises(TransformError):
            apply("density", {}, self.ROWS)

    def test_ignores_nulls(self):
        rows = [{"v": None}, {"v": 5.0}]
        out = apply("density", {"field": "v", "steps": 5}, rows)
        assert len(out) == 5


class TestQuantileTransform:
    ROWS = [{"v": float(i)} for i in range(1, 101)]

    def test_default_probs(self):
        out = apply("quantile", {"field": "v"}, self.ROWS)
        assert len(out) == 20  # step 0.05 -> 0.025 .. 0.975
        assert out[0]["prob"] == 0.025

    def test_median_prob(self):
        out = apply("quantile", {"field": "v", "probs": [0.5]}, self.ROWS)
        assert abs(out[0]["value"] - 50.5) < 1e-9

    def test_extreme_probs(self):
        out = apply(
            "quantile", {"field": "v", "probs": [0.0, 1.0]}, self.ROWS
        )
        assert out[0]["value"] == 1.0
        assert out[1]["value"] == 100.0

    def test_monotone_in_prob(self):
        out = apply("quantile", {"field": "v"}, self.ROWS)
        values = [row["value"] for row in out]
        assert values == sorted(values)

    def test_groupby(self):
        rows = [{"v": 1.0, "g": "a"}, {"v": 100.0, "g": "b"}]
        out = apply(
            "quantile",
            {"field": "v", "groupby": ["g"], "probs": [0.5]},
            rows,
        )
        assert {(row["g"], row["value"]) for row in out} == \
            {("a", 1.0), ("b", 100.0)}

    def test_bad_step(self):
        with pytest.raises(TransformError):
            apply("quantile", {"field": "v", "step": 2}, self.ROWS)


class TestRegressionTransform:
    def test_perfect_line(self):
        rows = [{"x": float(i), "y": 2.0 * i + 1.0} for i in range(10)]
        out = apply("regression", {"x": "x", "y": "y"}, rows)
        assert len(out) == 2
        assert abs(out[0]["y"] - 1.0) < 1e-9      # intercept at x=0
        assert abs(out[1]["y"] - 19.0) < 1e-9     # 2*9+1 at x=9

    def test_params_mode(self):
        rows = [{"x": float(i), "y": 3.0 * i} for i in range(5)]
        out = apply(
            "regression", {"x": "x", "y": "y", "params": True}, rows
        )
        assert len(out) == 1
        intercept, slope = out[0]["coef"]
        assert abs(slope - 3.0) < 1e-9
        assert abs(intercept) < 1e-9
        assert out[0]["rSquared"] == 1.0

    def test_noisy_r_squared_below_one(self):
        rows = [
            {"x": 0.0, "y": 0.0}, {"x": 1.0, "y": 2.0},
            {"x": 2.0, "y": 1.0}, {"x": 3.0, "y": 4.0},
        ]
        out = apply(
            "regression", {"x": "x", "y": "y", "params": True}, rows
        )
        assert 0 < out[0]["rSquared"] < 1

    def test_groupby(self):
        rows = (
            [{"x": float(i), "y": float(i), "g": "a"} for i in range(4)]
            + [{"x": float(i), "y": -float(i), "g": "b"} for i in range(4)]
        )
        out = apply(
            "regression",
            {"x": "x", "y": "y", "groupby": ["g"], "params": True},
            rows,
        )
        slopes = {row["g"]: row["coef"][1] for row in out}
        assert abs(slopes["a"] - 1.0) < 1e-9
        assert abs(slopes["b"] + 1.0) < 1e-9

    def test_insufficient_points_skipped(self):
        out = apply("regression", {"x": "x", "y": "y"}, [{"x": 1, "y": 1}])
        assert out == []

    def test_unsupported_method(self):
        with pytest.raises(TransformError):
            apply(
                "regression",
                {"x": "x", "y": "y", "method": "poly"},
                [{"x": 1.0, "y": 1.0}, {"x": 2.0, "y": 2.0}],
            )

    def test_untranslatable_forces_client_cut(self):
        """A density step must pin everything after it to the client."""
        from repro.compile import compile_spec
        from repro.engine import compute_stats, Table
        from repro.planner import resolve_chain, translatable_prefix

        spec = {
            "data": [
                {"name": "raw", "url": "x://"},
                {"name": "dens", "source": "raw", "transform": [
                    {"type": "filter", "expr": "datum.v > 0"},
                    {"type": "density", "field": "v", "steps": 10},
                    {"type": "collect", "sort": {"field": "value"}},
                ]},
            ]
        }
        rows = [{"v": float(i)} for i in range(50)]
        compiled = compile_spec(spec, data_tables={"raw": rows})
        table = Table.from_rows(rows)
        _, steps = resolve_chain(compiled, "dens")
        prefix, _ = translatable_prefix(steps, ["v"], {})
        assert prefix == 1  # only the filter is offloadable
