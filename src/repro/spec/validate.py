"""Semantic validation of parsed specs.

Catches the errors a live spec editor needs to surface before compiling:
duplicate names, dangling dataset/signal references, unknown transform
types, and datasets with no data origin.
"""

from repro.dataflow.transforms import transform_types
from repro.spec.model import Spec, SpecError

# Transform params that reference other datasets.
_DATASET_REF_PARAMS = {"from"}


def validate_spec(spec):
    """Raise :class:`SpecError` on the first problem found; returns spec."""
    if not isinstance(spec, Spec):
        raise SpecError("expected a parsed Spec")

    _check_duplicates(spec.signal_names(), "signal")
    _check_duplicates(spec.dataset_names(), "dataset")
    _check_duplicates([scale.name for scale in spec.scales], "scale")

    known_types = set(transform_types())
    dataset_names = set(spec.dataset_names())
    signal_names = set(spec.signal_names())

    # Value transforms (extent) publish output signals.
    for dataset in spec.data:
        for step in dataset.transform:
            if step.output_signal:
                if step.output_signal in signal_names:
                    raise SpecError(
                        "transform output signal {!r} collides with a "
                        "declared signal".format(step.output_signal)
                    )
                signal_names.add(step.output_signal)

    for dataset in spec.data:
        path = "data[{}]".format(dataset.name)
        if dataset.values is None and dataset.source is None \
                and dataset.url is None:
            raise SpecError(
                "dataset needs 'values', 'source', or 'url'", path
            )
        if dataset.source is not None and dataset.source not in dataset_names:
            raise SpecError(
                "unknown source dataset {!r}".format(dataset.source), path
            )
        if dataset.source == dataset.name:
            raise SpecError("dataset cannot source itself", path)
        for index, step in enumerate(dataset.transform):
            step_path = "{}.transform[{}]".format(path, index)
            if step.type not in known_types:
                raise SpecError(
                    "unknown transform type {!r}".format(step.type), step_path
                )
            for key, value in step.params.items():
                if key in _DATASET_REF_PARAMS:
                    ref = value.get("data") if isinstance(value, dict) else value
                    if ref not in dataset_names:
                        raise SpecError(
                            "unknown dataset reference {!r}".format(ref),
                            step_path,
                        )
                _check_signal_params(value, signal_names, step_path)

    for index, mark in enumerate(spec.marks):
        if mark.data is not None and mark.data not in dataset_names:
            raise SpecError(
                "mark references unknown dataset {!r}".format(mark.data),
                "marks[{}]".format(index),
            )
    for scale in spec.scales:
        domain = scale.domain
        if isinstance(domain, dict) and "data" in domain:
            if domain["data"] not in dataset_names:
                raise SpecError(
                    "scale domain references unknown dataset {!r}".format(
                        domain["data"]
                    ),
                    "scales[{}]".format(scale.name),
                )

    scale_names = {scale.name for scale in spec.scales}
    for index, axis in enumerate(spec.axes):
        if axis.scale not in scale_names:
            raise SpecError(
                "axis references unknown scale {!r}".format(axis.scale),
                "axes[{}]".format(index),
            )
    for index, legend in enumerate(spec.legends):
        for channel, scale_name in legend.scales.items():
            if scale_name not in scale_names:
                raise SpecError(
                    "legend {} references unknown scale {!r}".format(
                        channel, scale_name
                    ),
                    "legends[{}]".format(index),
                )
    return spec


def _check_duplicates(names, what):
    seen = set()
    for name in names:
        if name in seen:
            raise SpecError("duplicate {} name {!r}".format(what, name))
        seen.add(name)


def _check_signal_params(value, signal_names, path):
    """Validate {"signal": name-or-expr} references recursively."""
    if isinstance(value, dict):
        if set(value.keys()) == {"signal"}:
            # The reference may be a bare name or an expression; bare names
            # must exist.  Expressions are validated at compile time.
            ref = value["signal"]
            if isinstance(ref, str) and ref.isidentifier() \
                    and ref not in signal_names:
                raise SpecError(
                    "unknown signal reference {!r}".format(ref), path
                )
            return
        for item in value.values():
            _check_signal_params(item, signal_names, path)
    elif isinstance(value, list):
        for item in value:
            _check_signal_params(item, signal_names, path)
