"""Embedded columnar SQL engine (the reproduction's DBMS substrate)."""

from repro.engine.catalog import Catalog, ColumnStats, TableStats, compute_stats
from repro.engine.database import Database
from repro.engine.errors import (
    CatalogError,
    EngineError,
    ExecutionError,
    PlanError,
    SQLSyntaxError,
    TypeMismatchError,
)
from repro.engine.parallel import (
    MorselExecutor,
    resolve_morsel_rows,
    resolve_parallelism,
)
from repro.engine.table import Column, Table, concat_tables
from repro.engine.types import SQLType

__all__ = [
    "Catalog",
    "CatalogError",
    "Column",
    "ColumnStats",
    "Database",
    "EngineError",
    "ExecutionError",
    "MorselExecutor",
    "PlanError",
    "SQLSyntaxError",
    "SQLType",
    "Table",
    "TableStats",
    "TypeMismatchError",
    "compute_stats",
    "concat_tables",
    "resolve_morsel_rows",
    "resolve_parallelism",
]
