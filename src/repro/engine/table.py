"""Compatibility shim: columnar storage now lives in :mod:`repro.data`.

The engine historically owned ``Table``/``Column``; the classes moved to
the layer-neutral ``repro.data`` package so the middleware and client
dataflow can share them without importing the engine.  Everything the
engine (and existing tests) imported from here keeps working.
"""

from repro.data.batch import (
    Column,
    ColumnBatch,
    Table,
    concat_batches,
    concat_tables,
)

__all__ = ["Column", "ColumnBatch", "Table", "concat_batches", "concat_tables"]
