"""Multi-view specs: several marks over several sink datasets, planned
and executed together (the dashboard-style composition the intro's
"innovative designs" argument needs)."""

import pytest

from repro.core import VegaPlus
from repro.datagen import generate_flights

MULTI_VIEW_SPEC = {
    "signals": [
        {"name": "minDistance", "value": 0,
         "bind": {"input": "range", "min": 0, "max": 3000}},
    ],
    "data": [
        {"name": "flights", "url": "synthetic://flights"},
        # View 1: delay histogram.
        {"name": "hist", "source": "flights", "transform": [
            {"type": "filter", "expr": "datum.distance >= minDistance"},
            {"type": "extent", "field": "dep_delay", "signal": "delayExt"},
            {"type": "bin", "field": "dep_delay",
             "extent": {"signal": "delayExt"}, "maxbins": 10},
            {"type": "aggregate", "groupby": ["bin0", "bin1"],
             "ops": ["count"], "as": ["count"]},
        ]},
        # View 2: mean delay per carrier.
        {"name": "by_carrier", "source": "flights", "transform": [
            {"type": "filter", "expr": "datum.distance >= minDistance"},
            {"type": "aggregate", "groupby": ["carrier"],
             "ops": ["mean", "count"], "fields": ["dep_delay", None],
             "as": ["mean_delay", "n"]},
        ]},
    ],
    "marks": [
        {"type": "rect", "from": {"data": "hist"},
         "encode": {"update": {"x": {"field": "bin0"},
                               "x2": {"field": "bin1"},
                               "y": {"field": "count"}}}},
        {"type": "rect", "from": {"data": "by_carrier"},
         "encode": {"update": {"x": {"field": "carrier"},
                               "y": {"field": "mean_delay"},
                               # width encodes group size so 'n' survives
                               # the mark-driven transfer pruning
                               "width": {"field": "n"}}}},
    ],
}


@pytest.fixture(scope="module")
def session():
    instance = VegaPlus(
        MULTI_VIEW_SPEC,
        data={"flights": generate_flights(40000)},
        latency_ms=20,
    )
    instance.startup()
    return instance


class TestMultiView:
    def test_both_sinks_planned(self, session):
        assert set(session.plan.datasets) == {"hist", "by_carrier"}
        assert session.plan.datasets["hist"].cut == 4
        assert session.plan.datasets["by_carrier"].cut == 2

    def test_both_views_populated(self, session):
        assert session.results("hist")
        assert len(session.results("by_carrier")) == 10

    def test_shared_signal_updates_both_views(self, session):
        before_hist = sum(r["count"] for r in session.results("hist"))
        before_carrier = sum(r["n"] for r in session.results("by_carrier"))
        assert before_hist == before_carrier  # same filter, same data
        result = session.interact("minDistance", 1000)
        after_hist = sum(r["count"] for r in result.datasets["hist"])
        after_carrier = sum(r["n"] for r in result.datasets["by_carrier"])
        assert after_hist == after_carrier
        assert after_hist < before_hist
        session.interact("minDistance", 0)

    def test_views_agree_with_client_only(self, session):
        hybrid_hist = session.results("hist")
        baseline = session.run_client_only()

        def canon(rows):
            return sorted(
                ((row["bin0"] is None, row["bin0"]), row["count"])
                for row in rows
            )

        assert canon(baseline.datasets["hist"]) == canon(hybrid_hist)

    def test_per_view_custom_cuts(self, session):
        plan = session.custom_plan({"hist": 4, "by_carrier": 0},
                                   label="mixed")
        result = session.run_with_plan(plan)
        # hist stays tiny (server aggregate); by_carrier ships raw rows.
        hist_query = [e for e in result.queries if "bin0" in e.sql]
        assert hist_query and hist_query[-1].rows <= 12
        raw_query = max(result.queries, key=lambda e: e.rows)
        assert raw_query.rows == 40000

    def test_plan_graph_covers_both_pipelines(self, session):
        from repro.perf import plan_graph

        graph = plan_graph(session)
        datasets = {node.dataset for node in graph.nodes}
        assert {"hist", "by_carrier"} <= datasets
