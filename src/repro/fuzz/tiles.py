"""Tiles-vs-direct differential fuzzing.

Generates brush-shaped cases (1-D / 2-D range predicates over numeric
columns feeding a decomposable aggregate) and replays the same event
sequence through two sessions: one with the tile index forced on, one
with tiles disabled.  After startup and after every event the canonical
sink rows must match.  Event values mix grid-aligned bin edges (the tile
fast path), off-grid values and exotic bounds (the unaligned fallback),
nulls (gated brushes), inverted/empty ranges, and mid-sequence streaming
appends (the delta-patch path).
"""

import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.session import VegaPlus
from repro.dataflow.transforms.bin import bin_params
from repro.expr.evaluator import Evaluator, _boolean
from repro.expr.parser import parse
from repro.fuzz.normalize import canonical_rows, rows_equivalent
from repro.tiles.build import TILE_RESOLUTION

_SEED_STRIDE = 100003

#: category pool for group keys: duplicates, empty string, unicode
_CATS = ["a", "b", "cc", "", "α-β", None]

#: operator pairs for the low/high side of a brush range
_OP_PAIRS = [(">=", "<"), (">", "<="), (">=", "<="), (">", "<")]


@dataclass
class TilesCase:
    """One generated tiles-vs-direct case."""

    seed: int
    spec: dict
    rows: List[dict]
    #: ("set", signal, value) | ("append", rows)
    events: List[tuple]
    notes: str = ""


@dataclass
class TilesMismatch:
    stage: str  # "startup" | "event[i] sig=value" | "append[i]"
    sink: str
    tiled: list
    direct: list

    def describe(self):
        return "{} sink={}\n  tiled : {!r}\n  direct: {!r}".format(
            self.stage, self.sink, self.tiled[:6], self.direct[:6])


@dataclass
class TilesReport:
    case: TilesCase
    mismatches: List[TilesMismatch] = field(default_factory=list)
    error: str = ""
    stats: dict = field(default_factory=dict)

    @property
    def ok(self):
        return not self.mismatches and not self.error

    def describe(self):
        lines = ["seed={} {}".format(self.case.seed, self.case.notes)]
        if self.error:
            lines.append("ERROR: {}".format(self.error))
        for mismatch in self.mismatches:
            lines.append(mismatch.describe())
        if self.stats:
            lines.append("tiles: {}".format(self.stats))
        return "\n".join(lines)


@dataclass
class TilesCampaignResult:
    seed: int
    iterations: int
    failures: List[TilesReport] = field(default_factory=list)
    cases_run: int = 0
    tile_hits: int = 0
    tile_builds: int = 0
    tile_deltas: int = 0
    tile_unaligned: int = 0

    @property
    def ok(self):
        return not self.failures

    def describe(self):
        lines = [
            "tiles campaign: {} cases, {} failures "
            "(hits={} builds={} deltas={} unaligned={})".format(
                self.cases_run, len(self.failures), self.tile_hits,
                self.tile_builds, self.tile_deltas, self.tile_unaligned)
        ]
        for report in self.failures:
            lines.append("-" * 60)
            lines.append(report.describe())
        return "\n".join(lines)


# -- generation --------------------------------------------------------------


def _numeric(rng, lo, hi, null_p):
    roll = rng.random()
    if roll < null_p:
        return None
    if roll < null_p + 0.04:
        return float("nan")  # the data model folds NaN into NULL
    # snap to a coarse lattice so duplicates and exact edge collisions
    # actually happen
    span = hi - lo
    return lo + round(rng.random() * 20) / 20.0 * span


def _row(rng):
    return {
        "bx": _numeric(rng, 0.0, 100.0, 0.15),
        "by": _numeric(rng, -20.0, 20.0, 0.15),
        "val": _numeric(rng, -50.0, 50.0, 0.10),
        "cat": rng.choice(_CATS),
    }


def _brush_steps(rng, field_name, lo, hi):
    """Brush filter step(s) over one axis, in one of several shapes the
    detector must normalize identically."""
    ops = rng.choice(_OP_PAIRS)
    low = "datum.{} {} {}".format(field_name, ops[0], lo)
    high = "datum.{} {} {}".format(field_name, ops[1], hi)
    shape = rng.random()
    if shape < 0.35:
        return [{"type": "filter", "expr": "{} && {}".format(low, high)}]
    if shape < 0.55:
        # null-gated: a cleared brush selects everything
        return [{"type": "filter",
                 "expr": "{} == null || ({} && {})".format(lo, low, high)}]
    if shape < 0.75:
        # two separate steps
        return [{"type": "filter", "expr": low},
                {"type": "filter", "expr": high}]
    # negated complement of the low side
    flipped = {">=": "<", ">": "<=", "<": ">=", "<=": ">"}[ops[0]]
    return [{"type": "filter",
             "expr": "!(datum.{} {} {}) && {}".format(
                 field_name, flipped, lo, high)}]


def _grid_edges(rows, prefix_steps, field_name):
    """The widened brush-grid edges the tile build will choose, derived
    the same way: extent of the prefix-filtered column, bin_params at the
    tile resolution, plus one top slot."""
    keep = rows
    for step in prefix_steps:
        if step["type"] == "filter":
            node = parse(step["expr"])
            evaluator = Evaluator()
            keep = [row for row in keep
                    if _boolean(evaluator.evaluate(node, datum=row))]
    values = [row.get(field_name) for row in keep]
    values = [v for v in values
              if isinstance(v, (int, float)) and v == v]
    if not values:
        return []
    start, stop, step_w = bin_params(
        [min(values), max(values)], maxbins=TILE_RESOLUTION, nice=True)
    if step_w <= 0:
        return []
    n_bins = int(round((stop - start) / step_w)) + 1
    return [start + k * step_w for k in range(n_bins + 1)]


def _event_value(rng, edges):
    roll = rng.random()
    if edges and roll < 0.60:
        return rng.choice(edges)
    if edges and roll < 0.72:
        # off-grid: splits a slot, must fall back to requery
        return rng.choice(edges[:-1]) + (edges[1] - edges[0]) * 0.37
    if roll < 0.82:
        return None
    if roll < 0.90:
        return rng.choice([-1e9, 1e9])
    return round(rng.uniform(-120.0, 120.0), 2)


def generate_tiles_case(seed, max_rows=60):
    """Generate one tiles-vs-direct case from ``seed``."""
    rng = random.Random(seed)
    rows = [_row(rng) for _ in range(rng.randint(0, max_rows))]

    prefix = []
    if rng.random() < 0.35:
        prefix.append({"type": "filter", "expr": rng.choice([
            "datum.val > 0", "datum.val != null", "datum.bx <= 90",
        ])})
    if rng.random() < 0.2:
        prefix.append({"type": "formula", "expr": "datum.val * 2",
                       "as": "v2"})

    axes = [("bx", "lo0", "hi0")]
    if rng.random() < 0.4:
        axes.append(("by", "lo1", "hi1"))
    steps = list(prefix)
    for field_name, lo, hi in axes:
        steps.extend(_brush_steps(rng, field_name, lo, hi))

    # target: what the brush filters into
    target = rng.random()
    groupby = []
    if target < 0.4:
        groupby = ["cat"]
    elif target < 0.7:
        steps.append({"type": "bin", "field": "val",
                      "extent": [-50, 50], "maxbins": 10,
                      "as": ["vb0", "vb1"]})
        groupby = ["vb0", "vb1"]

    pool = [("count", None), ("sum", "val"), ("mean", "val"),
            ("min", "val"), ("max", "val"), ("valid", "val"),
            ("missing", "val")]
    picks = rng.sample(pool, rng.randint(1, 3))
    steps.append({
        "type": "aggregate",
        "groupby": groupby,
        "ops": [op for op, _ in picks],
        "fields": [f for _, f in picks],
        "as": ["out{}".format(i) for i in range(len(picks))],
    })
    out_fields = list(groupby) + ["out{}".format(i)
                                  for i in range(len(picks))]
    if rng.random() < 0.25:
        steps.append({"type": "collect",
                      "sort": {"field": out_fields[0]}})

    edges = {f: _grid_edges(rows, prefix, f) for f, _, _ in axes}
    signals = []
    for field_name, lo, hi in axes:
        for name in (lo, hi):
            signals.append({
                "name": name,
                "value": _event_value(rng, edges[field_name]),
                "bind": {"input": "range", "min": -120, "max": 120,
                         "step": 0.01},
            })

    channels = ["x", "y", "fill", "stroke", "size", "shape", "opacity",
                "x2", "y2", "tooltip"]
    spec = {
        "description": "tiles fuzz seed={}".format(seed),
        "width": 400,
        "height": 200,
        "signals": signals,
        "data": [
            {"name": "t", "url": "synthetic://t"},
            {"name": "view", "source": "t", "transform": steps},
        ],
        "marks": [{
            "type": "rect",
            "from": {"data": "view"},
            "encode": {"update": {
                channel: {"field": f}
                for channel, f in zip(channels, out_fields)
            }},
        }],
    }

    events = []
    signal_axis = {}
    for field_name, lo, hi in axes:
        signal_axis[lo] = field_name
        signal_axis[hi] = field_name
    for _ in range(rng.randint(4, 8)):
        name = rng.choice(list(signal_axis))
        events.append(("set", name,
                       _event_value(rng, edges[signal_axis[name]])))
    if rows and rng.random() < 0.3:
        extra = [_row(rng) for _ in range(rng.randint(1, 8))]
        events.insert(rng.randint(1, len(events)), ("append", extra))

    notes = "rows={} axes={} groupby={} ops={} events={}".format(
        len(rows), [a[0] for a in axes], groupby,
        [op for op, _ in picks], len(events))
    return TilesCase(seed=seed, spec=spec, rows=rows, events=events,
                     notes=notes)


# -- checking ----------------------------------------------------------------


def _canon(session, result):
    canon = {}
    for sink, sink_rows in result.datasets.items():
        fields = session.compiled.spec.mark_fields(sink) or None
        canon[sink] = canonical_rows(sink_rows, fields=fields)
    return canon


def _compare(report, stage, tiled_canon, direct_canon):
    for sink in sorted(set(tiled_canon) | set(direct_canon)):
        t_rows = tiled_canon.get(sink, [])
        d_rows = direct_canon.get(sink, [])
        if not rows_equivalent(t_rows, d_rows):
            report.mismatches.append(
                TilesMismatch(stage, sink, t_rows, d_rows))


def check_tiles_case(case):
    """Replay ``case`` through a tiles-forced and a tiles-off session,
    comparing canonical sink rows at every step."""
    report = TilesReport(case)
    try:
        tiled = VegaPlus(case.spec, data={"t": case.rows},
                         latency_ms=0.0, bandwidth_mbps=100000.0,
                         tiles="force")
        direct = VegaPlus(case.spec, data={"t": case.rows},
                          latency_ms=0.0, bandwidth_mbps=100000.0,
                          tiles=False)
        t_result = tiled.startup()
        d_result = direct.startup()
    except Exception as exc:  # noqa: BLE001 - report, don't crash
        report.error = "{}: {}".format(type(exc).__name__, exc)
        return report
    _compare(report, "startup", _canon(tiled, t_result),
             _canon(direct, d_result))
    for index, event in enumerate(case.events):
        try:
            if event[0] == "append":
                t_result = tiled.append_data("t", event[1])
                d_result = direct.append_data("t", event[1])
                stage = "append[{}] rows={}".format(index, len(event[1]))
            else:
                _, name, value = event
                t_result = tiled.interact(name, value)
                d_result = direct.interact(name, value)
                stage = "event[{}] {}={}".format(index, name, value)
        except Exception as exc:  # noqa: BLE001
            report.error = "event[{}]: {}: {}".format(
                index, type(exc).__name__, exc)
            break
        _compare(report, stage, _canon(tiled, t_result),
                 _canon(direct, d_result))
    if tiled.tiles is not None:
        report.stats = tiled.tiles.stats()
    return report


def run_tiles_campaign(seed=0, iterations=200, max_rows=60,
                       max_failures=5, log=None):
    """Run ``iterations`` generated cases; stop early after
    ``max_failures`` failing ones."""
    result = TilesCampaignResult(seed=seed, iterations=iterations)
    for index in range(iterations):
        case_seed = seed * _SEED_STRIDE + index
        case = generate_tiles_case(case_seed, max_rows=max_rows)
        report = check_tiles_case(case)
        result.cases_run += 1
        stats = report.stats or {}
        result.tile_hits += stats.get("hits", 0)
        result.tile_builds += stats.get("builds", 0)
        result.tile_deltas += stats.get("deltas", 0)
        result.tile_unaligned += stats.get("unaligned_fallbacks", 0)
        if not report.ok:
            result.failures.append(report)
            if log:
                log("FAIL seed={}".format(case_seed))
            if len(result.failures) >= max_failures:
                break
        elif log and (index + 1) % 25 == 0:
            log("{}/{} ok".format(index + 1, iterations))
    return result
