"""Backend registry: create backends by name.

Mirrors the demo's back-end drop-down ("We currently support PostgreSQL,
OmniSciDB, and DuckDB"); here the choices are the embedded engine and
sqlite.
"""

from repro.backends.base import BackendError
from repro.backends.embedded import EmbeddedBackend
from repro.backends.sqlite import SQLiteBackend

_FACTORIES = {
    "embedded": EmbeddedBackend,
    "sqlite": SQLiteBackend,
}


def available_backends():
    """Names of registered backends."""
    return sorted(_FACTORIES)


def create_backend(name, **kwargs):
    """Instantiate a backend by name."""
    factory = _FACTORIES.get(name)
    if factory is None:
        raise BackendError(
            "unknown backend {!r}; available: {}".format(
                name, ", ".join(available_backends())
            )
        )
    return factory(**kwargs)


def register_backend(name, factory):
    """Register a custom backend factory (extension point)."""
    _FACTORIES[name] = factory
