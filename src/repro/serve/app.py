"""The multi-tenant asyncio serving front end.

A zero-dependency HTTP/1.1 server (stdlib ``asyncio.start_server``; no
framework) that owns a :class:`~repro.serve.pool.SessionPool` over
shared Databases and puts per-tenant admission control
(:mod:`repro.serve.admission`) in front of every interaction.  Session
work is synchronous, so admitted requests run on a thread-pool executor
while the event loop keeps accepting, queueing, and rejecting.

Routes::

    GET  /healthz      liveness
    GET  /metrics      Prometheus exposition of the metrics registry
    GET  /stats        JSON: admission state, pool state, exact totals
    POST /v1/interact  {"dashboard": d, "signal": s, "value": v}
                       tenant from the X-Tenant header (or body)
    POST /v1/drill     {"tenant": t, "seconds": x} latency injection

Admission outcomes map onto HTTP exactly: admitted requests answer 200
(or 400/500 from execution), rejections answer 429 with a computed
``Retry-After`` header and a JSON body naming the reason
(``rate`` | ``queue_full`` | ``timeout``).  The counter identity
``serve.requests == serve.admitted + serve.rejected`` and
``serve.admitted == serve.served + serve.errors`` hold exactly; the
load harness (:mod:`repro.serve.loadgen`) asserts both.
"""

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor

from repro.metrics import get_registry, render_prometheus
from repro.serve.admission import (
    AdmissionController,
    AdmissionError,
    TenantPolicy,
)
from repro.serve.latency import LatencyInjector
from repro.serve.pool import PoolError, SessionPool

#: HTTP reason phrases for the statuses the app emits
_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 429: "Too Many Requests",
    500: "Internal Server Error",
}

DEFAULT_TENANT = "default"


class ServingApp:
    """One serving process: admission + latency drills + session pool.

    ``dashboards`` maps name -> :class:`~repro.serve.pool.DashboardConfig`;
    ``policies`` maps tenant -> :class:`TenantPolicy` (others get
    ``default_policy``).  ``registry`` defaults to the process-wide
    metrics registry, so ``/metrics`` is the same plane every session
    already reports to.
    """

    def __init__(self, dashboards, policies=None, default_policy=None,
                 registry=None, host="127.0.0.1", port=0,
                 executor_workers=8, latency=None,
                 max_sessions_per_tenant=None, pool_kwargs=None):
        self.registry = registry if registry is not None else get_registry()
        self.host = host
        self.port = port
        self.default_policy = default_policy or TenantPolicy()
        self.admission = AdmissionController(
            policies=policies, default_policy=self.default_policy,
            metrics=self.registry,
        )
        self.latency = latency or LatencyInjector(metrics=self.registry)
        self.latency.metrics = self.registry
        if max_sessions_per_tenant is None:
            caps = [self.default_policy.max_concurrency]
            caps.extend(p.max_concurrency for p in (policies or {}).values())
            max_sessions_per_tenant = max(caps)
        self.executor = ThreadPoolExecutor(
            max_workers=executor_workers, thread_name_prefix="repro-serve"
        )
        self.pool = SessionPool(
            dashboards, self.executor, registry=self.registry,
            max_sessions_per_tenant=max_sessions_per_tenant,
            **(pool_kwargs or {}),
        )
        self.default_dashboard = self.pool.dashboard_names()[0]
        self._server = None
        self._connections = set()

    # -- lifecycle ---------------------------------------------------------

    async def start(self):
        """Bind and start accepting; resolves ``self.port`` when 0."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    @property
    def url(self):
        return "http://{}:{}".format(self.host, self.port)

    async def stop(self):
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Reap live connection handlers so no task outlives the app (a
        # cancelled orphan would log noise at loop teardown).
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections,
                                 return_exceptions=True)
        self.executor.shutdown(wait=True, cancel_futures=True)

    async def prewarm(self, dashboards=None):
        """Load shared backends (and caches) before traffic arrives."""
        for name in dashboards or self.pool.dashboard_names():
            await self.pool._shared(name)

    # -- HTTP plumbing ------------------------------------------------------

    async def _handle_connection(self, reader, writer):
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while True:
                request_line = await reader.readline()
                if not request_line or request_line.strip() == b"":
                    break
                try:
                    method, path, version = (
                        request_line.decode("latin-1").split()
                    )
                except ValueError:
                    break
                headers = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    key, _, value = line.decode("latin-1").partition(":")
                    headers[key.strip().lower()] = value.strip()
                length = int(headers.get("content-length") or 0)
                body = await reader.readexactly(length) if length else b""

                status, payload, content_type, extra = await self._route(
                    method, path.split("?", 1)[0], headers, body
                )
                keep_alive = (
                    version == "HTTP/1.1"
                    and headers.get("connection", "").lower() != "close"
                )
                head = [
                    "HTTP/1.1 {} {}".format(
                        status, _REASONS.get(status, "Status")),
                    "Content-Type: {}".format(content_type),
                    "Content-Length: {}".format(len(payload)),
                    "Connection: {}".format(
                        "keep-alive" if keep_alive else "close"),
                ]
                head.extend(
                    "{}: {}".format(key, value) for key, value in extra
                )
                writer.write(
                    ("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
                )
                writer.write(payload)
                await writer.drain()
                self.registry.inc("serve.responses", status=str(status))
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    @staticmethod
    def _json(status, obj, extra=()):
        return (status, (json.dumps(obj) + "\n").encode("utf-8"),
                "application/json", tuple(extra))

    async def _route(self, method, path, headers, body):
        try:
            if path == "/healthz":
                return 200, b"ok\n", "text/plain", ()
            if path == "/metrics":
                text = render_prometheus(self.registry)
                return (200, text.encode("utf-8"),
                        "text/plain; version=0.0.4", ())
            if path == "/stats":
                return self._json(200, self.stats())
            if path == "/v1/interact":
                if method != "POST":
                    return self._json(405, {"error": "POST required"})
                return await self._interact(headers, body)
            if path == "/v1/drill":
                if method != "POST":
                    return self._json(405, {"error": "POST required"})
                return self._drill(body)
            return self._json(404, {"error": "no route {}".format(path)})
        except Exception as exc:  # last-resort 500, connection survives
            self.registry.inc("serve.errors", kind="internal")
            return self._json(500, {"error": repr(exc)})

    # -- request handlers ---------------------------------------------------

    async def _interact(self, headers, body):
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError):
            return self._json(400, {"error": "body must be JSON"})
        tenant = (headers.get("x-tenant") or payload.get("tenant")
                  or DEFAULT_TENANT)
        dashboard = payload.get("dashboard") or self.default_dashboard
        signal = payload.get("signal")
        if not signal or "value" not in payload:
            return self._json(
                400, {"error": "signal and value are required"})
        value = payload["value"]

        start = time.perf_counter()
        try:
            admission = await self.admission.admit(tenant)
        except AdmissionError as rejected:
            return self._json(
                429,
                {
                    "error": "rejected",
                    "reason": rejected.reason,
                    "tenant": tenant,
                    "retry_after_seconds": rejected.retry_after_seconds,
                },
                extra=[("Retry-After", str(rejected.retry_after_header))],
            )

        loop = asyncio.get_running_loop()
        try:
            async with admission:
                await self.latency.apply(tenant)
                session = await self.pool.acquire(dashboard, tenant)
                try:
                    result = await loop.run_in_executor(
                        self.executor, session.interact, signal, value
                    )
                finally:
                    await self.pool.release(dashboard, tenant, session)
        except PoolError as exc:
            self.registry.inc("serve.errors", kind="pool", tenant=tenant)
            return self._json(404, {"error": str(exc)})
        except Exception as exc:
            # SessionError (unknown signal, ...) and execution failures:
            # admitted but not served.
            self.registry.inc("serve.errors", kind="execute", tenant=tenant)
            return self._json(400, {"error": repr(exc)})

        elapsed = time.perf_counter() - start
        self.registry.inc("serve.served", tenant=tenant)
        self.registry.observe(
            "serve.request_seconds", elapsed,
            tenant=tenant, dashboard=dashboard, event=signal,
        )
        rows = sum(len(r) for r in result.datasets.values())
        return self._json(200, {
            "tenant": tenant,
            "dashboard": dashboard,
            "signal": signal,
            "rows": rows,
            "server_seconds": elapsed,
            "modeled_seconds": result.breakdown.total,
            "cache_hits": result.cache_hits,
            "cache_misses": result.cache_misses,
            "queue_wait_seconds": admission.queue_wait_seconds,
        })

    def _drill(self, body):
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError):
            return self._json(400, {"error": "body must be JSON"})
        tenant = payload.get("tenant") or DEFAULT_TENANT
        seconds = float(payload.get("seconds") or 0.0)
        self.latency.set_delay(tenant, seconds)
        return self._json(200, {"tenant": tenant, "seconds": seconds})

    # -- introspection ------------------------------------------------------

    def totals(self):
        """Exact admission accounting from the metrics registry: overall
        and per-tenant requests/admitted/rejected(by reason)/served."""
        families = self.registry.families()

        def children(name):
            family = families.get(name)
            return family.children.values() if family else ()

        out = {"requests": 0, "admitted": 0, "served": 0, "errors": 0,
               "rejected": {}, "tenants": {}}

        def tenant_bucket(labels):
            tenant = labels.get("tenant", "?")
            return out["tenants"].setdefault(
                tenant, {"requests": 0, "admitted": 0, "served": 0,
                         "errors": 0, "rejected": {}})

        for name, key in (("serve.requests", "requests"),
                          ("serve.admitted", "admitted"),
                          ("serve.served", "served")):
            for child in children(name):
                out[key] += child.value
                tenant_bucket(child.labels)[key] += child.value
        for child in children("serve.errors"):
            if "tenant" not in child.labels:
                continue
            out["errors"] += child.value
            tenant_bucket(child.labels)["errors"] += child.value
        for child in children("serve.rejected"):
            reason = child.labels.get("reason", "?")
            out["rejected"][reason] = (
                out["rejected"].get(reason, 0) + child.value)
            bucket = tenant_bucket(child.labels)["rejected"]
            bucket[reason] = bucket.get(reason, 0) + child.value
        out["rejected_total"] = sum(out["rejected"].values())
        out["unaccounted"] = (
            out["requests"] - out["admitted"] - out["rejected_total"])
        return out

    def stats(self):
        return {
            "admission": self.admission.stats(),
            "pool": self.pool.stats(),
            "totals": self.totals(),
        }
