"""Result-table canonicalization for differential comparison.

Different executions of the same pipeline legitimately differ in
*presentation*: column order (SQL SELECT order vs client dict insertion
order), row order (hash aggregation vs GROUP BY output order), float
formatting (numpy float64 vs sqlite REAL round-trips), and integer-vs-
float typing (sqlite COUNT returns int, the client returns float).  The
canonical form erases exactly those differences — and nothing else — so
that equality of canonical forms means "the chart would look the same".

Encoded intentional equivalences (the documented divergences the oracle
tolerates):

* floats compare after rounding to :data:`FLOAT_DIGITS` significant
  digits (cross-backend summation order);
* ``-0.0`` equals ``0.0``;
* ``NaN`` equals NULL (the engine's data model maps JS NaN to SQL NULL);
* booleans and ints equal their float value (sqlite has no BOOLEAN);
* row order is ignored (rows are sorted by their canonical cells);
* column order is ignored (columns are sorted by name);
* when ``fields`` is given, only those columns are compared — the final
  server cut projects the transfer to mark-consumed fields, earlier cuts
  carry the full schema to the client.
"""

import math

#: significant digits floats are rounded to before sorting/comparison
FLOAT_DIGITS = 9

# Type tags keep heterogeneous cells orderable without Python TypeErrors.
_TAG_NULL = 0
_TAG_NUM = 1
_TAG_STR = 2
_TAG_OTHER = 3


def canonical_cell(value, float_digits=FLOAT_DIGITS):
    """Canonical, totally-orderable form of one cell value.

    Returns a ``(tag, payload)`` tuple: NULL/NaN -> (0, ""), numbers
    (bool/int/float) -> (1, rounded float), strings -> (2, str), anything
    else -> (3, repr).
    """
    if value is None:
        return (_TAG_NULL, "")
    if isinstance(value, bool):
        return (_TAG_NUM, 1.0 if value else 0.0)
    if isinstance(value, (int, float)):
        number = float(value)
        if math.isnan(number):
            return (_TAG_NULL, "")
        if math.isinf(number):
            return (_TAG_NUM, number)
        if number == 0.0:
            return (_TAG_NUM, 0.0)  # -0.0 folds into 0.0
        rounded = float("{:.{}g}".format(number, float_digits))
        return (_TAG_NUM, rounded)
    if isinstance(value, str):
        return (_TAG_STR, value)
    return (_TAG_OTHER, repr(value))


def canonical_rows(rows, fields=None, float_digits=FLOAT_DIGITS):
    """Canonical form of a row-dict list: ``(columns, sorted row tuples)``.

    ``fields`` optionally restricts the compared columns (mark-consumed
    fields).  Missing keys read as NULL, so rows with ragged key sets
    canonicalize consistently.
    """
    rows = list(rows)
    if fields is not None:
        columns = sorted(fields)
    else:
        seen = set()
        columns = []
        for row in rows:
            for key in row:
                if key not in seen:
                    seen.add(key)
                    columns.append(key)
        columns = sorted(columns)
    body = sorted(
        tuple(
            canonical_cell(row.get(name), float_digits) for name in columns
        )
        for row in rows
    )
    return (tuple(columns), tuple(body))


def canonical_table(table, fields=None, float_digits=FLOAT_DIGITS):
    """Canonical form of an engine :class:`~repro.engine.table.Table`."""
    return canonical_rows(table.to_rows(), fields=fields,
                          float_digits=float_digits)


def _cells_close(left, right, rel_tol=1e-6, abs_tol=1e-9):
    if left == right:
        return True
    if left[0] != right[0]:
        return False
    if left[0] == _TAG_NUM:
        return math.isclose(left[1], right[1],
                            rel_tol=rel_tol, abs_tol=abs_tol)
    return False


def rows_equivalent(canon_a, canon_b, rel_tol=1e-6, abs_tol=1e-9):
    """Equality of canonical forms, with a float-tolerance fallback.

    Rounding to significant digits can land two nearly-equal values on
    different sides of a rounding boundary; when exact canonical equality
    fails but shapes match, compare sorted rows cell-wise with isclose.
    """
    if canon_a == canon_b:
        return True
    columns_a, body_a = canon_a
    columns_b, body_b = canon_b
    if columns_a != columns_b or len(body_a) != len(body_b):
        return False
    for row_a, row_b in zip(body_a, body_b):
        if len(row_a) != len(row_b):
            return False
        for cell_a, cell_b in zip(row_a, row_b):
            if not _cells_close(cell_a, cell_b, rel_tol, abs_tol):
                return False
    return True


def _format_cell(cell):
    tag, payload = cell
    if tag == _TAG_NULL:
        return "NULL"
    if tag == _TAG_STR:
        return repr(payload)
    return repr(payload)


def _format_row(row):
    return "(" + ", ".join(_format_cell(cell) for cell in row) + ")"


def diff_canonical(canon_a, canon_b, label_a="a", label_b="b", limit=8):
    """Human-readable difference report between two canonical forms."""
    lines = []
    columns_a, body_a = canon_a
    columns_b, body_b = canon_b
    if columns_a != columns_b:
        lines.append("columns differ:")
        lines.append("  {}: {}".format(label_a, list(columns_a)))
        lines.append("  {}: {}".format(label_b, list(columns_b)))
        return "\n".join(lines)
    lines.append("columns: {}".format(list(columns_a)))
    if len(body_a) != len(body_b):
        lines.append("row count differs: {}={} {}={}".format(
            label_a, len(body_a), label_b, len(body_b)))
    set_a, set_b = set(body_a), set(body_b)
    only_a = [row for row in body_a if row not in set_b]
    only_b = [row for row in body_b if row not in set_a]
    for label, only in ((label_a, only_a), (label_b, only_b)):
        if only:
            lines.append("rows only in {} ({} total):".format(
                label, len(only)))
            for row in only[:limit]:
                lines.append("  " + _format_row(row))
            if len(only) > limit:
                lines.append("  ... {} more".format(len(only) - limit))
    if not only_a and not only_b and len(body_a) == len(body_b):
        lines.append("(forms differ only in duplicate-row multiplicity "
                     "or float rounding)")
    return "\n".join(lines)
