"""Tokenizer for the Vega expression language.

Vega expressions are a side-effect-free subset of JavaScript expressions:
literals, identifiers, member access, function calls, unary and binary
operators, and the ternary conditional.  This lexer produces a flat token
stream consumed by :mod:`repro.expr.parser`.
"""

from dataclasses import dataclass

from repro.expr.errors import ExprSyntaxError

# Token kinds.
NUMBER = "NUMBER"
STRING = "STRING"
IDENT = "IDENT"
PUNCT = "PUNCT"
EOF = "EOF"

# Multi-character operators, longest first so the scanner is greedy.
_PUNCTUATORS = [
    "===", "!==", ">>>",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "**",
    "+", "-", "*", "/", "%", "<", ">", "!", "?", ":",
    "(", ")", "[", "]", "{", "}", ",", ".", "&", "|", "^", "~",
]

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
_IDENT_CONT = _IDENT_START | set("0123456789")
_DIGITS = set("0123456789")

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "b": "\b",
    "f": "\f",
    "v": "\v",
    "0": "\0",
    "'": "'",
    '"': '"',
    "\\": "\\",
    "/": "/",
}


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``kind`` is one of NUMBER/STRING/IDENT/PUNCT/EOF; ``value`` carries the
    parsed payload (float for numbers, decoded text for strings, the raw
    lexeme otherwise); ``pos`` is the character offset in the source.
    """

    kind: str
    value: object
    pos: int


def tokenize(source):
    """Tokenize ``source`` and return a list of tokens ending with EOF.

    Raises :class:`ExprSyntaxError` on any character that cannot start a
    token or on an unterminated string literal.
    """
    tokens = []
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch in " \t\n\r":
            i += 1
            continue
        if ch in _DIGITS or (ch == "." and i + 1 < n and source[i + 1] in _DIGITS):
            value, i = _scan_number(source, i)
            tokens.append(Token(NUMBER, value, i))
            continue
        if ch in ("'", '"'):
            value, end = _scan_string(source, i)
            tokens.append(Token(STRING, value, i))
            i = end
            continue
        if ch in _IDENT_START:
            start = i
            while i < n and source[i] in _IDENT_CONT:
                i += 1
            tokens.append(Token(IDENT, source[start:i], start))
            continue
        matched = _match_punct(source, i)
        if matched is not None:
            tokens.append(Token(PUNCT, matched, i))
            i += len(matched)
            continue
        raise ExprSyntaxError("unexpected character {!r}".format(ch), i)
    tokens.append(Token(EOF, None, n))
    return tokens


def _match_punct(source, i):
    for punct in _PUNCTUATORS:
        if source.startswith(punct, i):
            return punct
    return None


def _scan_number(source, i):
    """Scan a numeric literal (int, float, exponent, hex) starting at i."""
    n = len(source)
    start = i
    if source.startswith(("0x", "0X"), i):
        i += 2
        while i < n and source[i] in "0123456789abcdefABCDEF":
            i += 1
        if i == start + 2:
            raise ExprSyntaxError("malformed hex literal", start)
        return float(int(source[start:i], 16)), i
    while i < n and source[i] in _DIGITS:
        i += 1
    if i < n and source[i] == ".":
        i += 1
        while i < n and source[i] in _DIGITS:
            i += 1
    if i < n and source[i] in "eE":
        j = i + 1
        if j < n and source[j] in "+-":
            j += 1
        if j < n and source[j] in _DIGITS:
            i = j
            while i < n and source[i] in _DIGITS:
                i += 1
        else:
            raise ExprSyntaxError("malformed exponent", i)
    return float(source[start:i]), i


def _scan_string(source, i):
    """Scan a quoted string starting at i; returns (decoded, end_index)."""
    quote = source[i]
    n = len(source)
    out = []
    j = i + 1
    while j < n:
        ch = source[j]
        if ch == "\\":
            if j + 1 >= n:
                break
            esc = source[j + 1]
            out.append(_ESCAPES.get(esc, esc))
            j += 2
            continue
        if ch == quote:
            return "".join(out), j + 1
        out.append(ch)
        j += 1
    raise ExprSyntaxError("unterminated string literal", i)
