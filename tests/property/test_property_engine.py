"""Property-based tests for the SQL engine's relational invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Database, Table

_VALUES = st.one_of(
    st.none(),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)
_KEYS = st.sampled_from(["a", "b", "c", "d"])


@st.composite
def tables(draw, min_rows=0, max_rows=40):
    count = draw(st.integers(min_value=min_rows, max_value=max_rows))
    xs = [draw(_VALUES) for _ in range(count)]
    ks = [draw(_KEYS) for _ in range(count)]
    return Table.from_columns(x=xs, k=ks)


def make_db(table):
    db = Database()
    db.load_table("t", table)
    return db


class TestFilterProperties:
    @given(tables())
    @settings(max_examples=100)
    def test_filter_partitions_rows(self, table):
        """WHERE p plus WHERE NOT p plus WHERE p IS NULL covers the table."""
        db = make_db(table)
        true_rows = db.execute("SELECT * FROM t WHERE x > 0").num_rows
        false_rows = db.execute("SELECT * FROM t WHERE NOT (x > 0)").num_rows
        null_rows = db.execute("SELECT * FROM t WHERE x IS NULL").num_rows
        assert true_rows + false_rows + null_rows == table.num_rows

    @given(tables())
    @settings(max_examples=50)
    def test_filter_subset(self, table):
        db = make_db(table)
        filtered = db.execute("SELECT * FROM t WHERE x > 0")
        assert filtered.num_rows <= table.num_rows


class TestAggregateProperties:
    @given(tables())
    @settings(max_examples=100)
    def test_group_counts_sum_to_total(self, table):
        db = make_db(table)
        grouped = db.execute("SELECT k, COUNT(*) AS n FROM t GROUP BY k")
        total = sum(row["n"] for row in grouped.to_rows())
        assert total == table.num_rows

    @given(tables(min_rows=1))
    @settings(max_examples=100)
    def test_group_sums_equal_global_sum(self, table):
        db = make_db(table)
        grouped = db.execute("SELECT k, SUM(x) AS s FROM t GROUP BY k")
        group_total = sum(
            row["s"] for row in grouped.to_rows() if row["s"] is not None
        )
        overall = db.execute("SELECT SUM(x) AS s FROM t").to_rows()[0]["s"]
        if overall is None:
            assert all(row["s"] is None for row in grouped.to_rows())
        else:
            assert abs(group_total - overall) < 1e-6

    @given(tables(min_rows=1))
    @settings(max_examples=100)
    def test_min_le_avg_le_max(self, table):
        db = make_db(table)
        row = db.execute(
            "SELECT MIN(x) AS lo, AVG(x) AS m, MAX(x) AS hi FROM t"
        ).to_rows()[0]
        if row["m"] is not None:
            assert row["lo"] - 1e-9 <= row["m"] <= row["hi"] + 1e-9

    @given(tables())
    @settings(max_examples=50)
    def test_count_distinct_bounds(self, table):
        db = make_db(table)
        row = db.execute(
            "SELECT COUNT(DISTINCT k) AS d, COUNT(k) AS n FROM t"
        ).to_rows()[0]
        assert row["d"] <= row["n"]
        assert row["d"] <= 4


class TestSortProperties:
    @given(tables())
    @settings(max_examples=100)
    def test_order_is_monotone(self, table):
        db = make_db(table)
        ordered = db.execute("SELECT x FROM t ORDER BY x ASC").to_rows()
        values = [row["x"] for row in ordered if row["x"] is not None]
        assert values == sorted(values)
        # NULLs sort last under ASC.
        tail = [row["x"] for row in ordered[len(values):]]
        assert all(value is None for value in tail)

    @given(tables(), st.integers(min_value=0, max_value=10))
    @settings(max_examples=50)
    def test_limit_bounds(self, table, limit):
        db = make_db(table)
        result = db.execute("SELECT x FROM t LIMIT {}".format(limit))
        assert result.num_rows == min(limit, table.num_rows)

    @given(tables())
    @settings(max_examples=50)
    def test_distinct_is_subset_without_duplicates(self, table):
        db = make_db(table)
        distinct = db.execute("SELECT DISTINCT k FROM t").to_rows()
        values = [row["k"] for row in distinct]
        assert len(values) == len(set(values))
        assert set(values) == {
            value for value in table.column("k").to_list()
        }


class TestMergeRewriteProperties:
    """Merged and rewritten pipelines agree with nested pipelines."""

    @given(tables(min_rows=1), st.floats(min_value=-10, max_value=10,
                                         allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_merge_preserves_semantics(self, table, threshold):
        from repro.sqlgen import compose_pipeline, merge_query, rewrite_query

        steps = [
            ("filter", {"expr": "datum.x > {}".format(threshold)}),
            ("aggregate", {"groupby": ["k"], "ops": ["count", "sum"],
                           "fields": [None, "x"], "as": ["n", "s"]}),
        ]
        nested = compose_pipeline("t", ["x", "k"], steps)
        db = make_db(table)

        def canon(result):
            return sorted(
                (row["k"], row["n"], None if row["s"] is None else
                 round(row["s"], 6))
                for row in result.to_rows()
            )

        base = canon(db.execute(nested.to_sql()))
        assert canon(db.execute(merge_query(nested).to_sql())) == base
        assert canon(db.execute(rewrite_query(nested).to_sql())) == base


class TestWindowProperties:
    """Window function invariants: running sums are prefix sums."""

    @given(tables(min_rows=1))
    @settings(max_examples=50, deadline=None)
    def test_running_sum_is_prefix_sum(self, table):
        db = make_db(table)
        rows = db.execute(
            "SELECT x, SUM(x) OVER (ORDER BY x ASC) AS run FROM t "
            "WHERE x IS NOT NULL ORDER BY x ASC"
        ).to_rows()
        prefix = 0.0
        for row in rows:
            prefix += row["x"]
            assert abs(row["run"] - prefix) < 1e-6

    @given(tables(min_rows=1))
    @settings(max_examples=50, deadline=None)
    def test_row_number_is_permutation(self, table):
        db = make_db(table)
        rows = db.execute(
            "SELECT ROW_NUMBER() OVER (ORDER BY x ASC) AS rn FROM t"
        ).to_rows()
        assert sorted(row["rn"] for row in rows) == \
            [float(i) for i in range(1, table.num_rows + 1)]

    @given(tables(min_rows=1))
    @settings(max_examples=50, deadline=None)
    def test_partition_totals_match_group_sums(self, table):
        db = make_db(table)
        windowed = db.execute(
            "SELECT k, SUM(x) OVER (PARTITION BY k) AS total FROM t"
        ).to_rows()
        grouped = {
            row["k"]: row["s"]
            for row in db.execute(
                "SELECT k, SUM(x) AS s FROM t GROUP BY k"
            ).to_rows()
        }
        for row in windowed:
            expected = grouped[row["k"]]
            if expected is None:
                assert row["total"] is None
            else:
                assert abs(row["total"] - expected) < 1e-6
