"""Unit tests for the expression tokenizer."""

import pytest

from repro.expr.errors import ExprSyntaxError
from repro.expr.lexer import EOF, IDENT, NUMBER, PUNCT, STRING, tokenize


def kinds(source):
    return [token.kind for token in tokenize(source)]


def values(source):
    return [token.value for token in tokenize(source)[:-1]]


class TestNumbers:
    def test_integer(self):
        assert values("42") == [42.0]

    def test_float(self):
        assert values("3.14") == [3.14]

    def test_leading_dot(self):
        assert values(".5") == [0.5]

    def test_exponent(self):
        assert values("1e3") == [1000.0]

    def test_negative_exponent(self):
        assert values("2.5e-2") == [0.025]

    def test_positive_exponent_sign(self):
        assert values("1E+2") == [100.0]

    def test_hex(self):
        assert values("0xff") == [255.0]

    def test_hex_uppercase(self):
        assert values("0XAB") == [171.0]

    def test_malformed_hex_raises(self):
        with pytest.raises(ExprSyntaxError):
            tokenize("0x")

    def test_malformed_exponent_raises(self):
        with pytest.raises(ExprSyntaxError):
            tokenize("1e+")

    def test_number_then_dot_member(self):
        # "1.5.x" is not valid input we care about, but "a.1" should fail in
        # the parser, not the lexer; the lexer sees IDENT PUNCT NUMBER.
        assert kinds("1.5") == [NUMBER, EOF]


class TestStrings:
    def test_single_quoted(self):
        assert values("'hello'") == ["hello"]

    def test_double_quoted(self):
        assert values('"world"') == ["world"]

    def test_escape_sequences(self):
        assert values(r"'a\nb\tc'") == ["a\nb\tc"]

    def test_escaped_quote(self):
        assert values(r"'it\'s'") == ["it's"]

    def test_unknown_escape_passes_through(self):
        assert values(r"'\q'") == ["q"]

    def test_unterminated_raises(self):
        with pytest.raises(ExprSyntaxError):
            tokenize("'abc")

    def test_empty_string(self):
        assert values("''") == [""]


class TestIdentifiers:
    def test_simple(self):
        assert values("datum") == ["datum"]

    def test_with_digits_and_underscore(self):
        assert values("field_2") == ["field_2"]

    def test_dollar_sign(self):
        assert values("$foo") == ["$foo"]

    def test_keywords_are_plain_idents(self):
        tokens = tokenize("true false null")
        assert [token.kind for token in tokens[:-1]] == [IDENT] * 3


class TestPunctuators:
    def test_longest_match_strict_equality(self):
        assert values("a===b") == ["a", "===", "b"]

    def test_longest_match_unsigned_shift(self):
        assert values("a>>>b") == ["a", ">>>", "b"]

    def test_two_char_ops(self):
        assert values("a<=b") == ["a", "<=", "b"]

    def test_logical_ops(self):
        assert values("a&&b||c") == ["a", "&&", "b", "||", "c"]

    def test_exponent_operator(self):
        assert values("a**b") == ["a", "**", "b"]

    def test_ternary(self):
        assert values("a?b:c") == ["a", "?", "b", ":", "c"]


class TestWhitespaceAndErrors:
    def test_whitespace_ignored(self):
        assert values("  a \t+\n b ") == ["a", "+", "b"]

    def test_empty_input_gives_only_eof(self):
        assert kinds("") == [EOF]

    def test_invalid_character_raises(self):
        with pytest.raises(ExprSyntaxError) as excinfo:
            tokenize("a @ b")
        assert excinfo.value.position == 2

    def test_positions_recorded(self):
        tokens = tokenize("ab + cd")
        assert tokens[0].pos == 0
        assert tokens[1].pos == 3
        assert tokens[2].pos == 5
