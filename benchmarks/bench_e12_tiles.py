"""E12 — data-tile index vs direct requery for linked brushing.

The demo's marquee interaction: a 1M-row flights dashboard (scaled by
``REPRO_BENCH_SCALE``) with two views linked to one distance brush — a
departure-delay histogram and a per-carrier aggregate.  Every brush move
re-filters the full table on the direct path; the tile path builds a
bin x bin aggregate cube once and answers each event by slicing it in
O(bins), with zero base-table scans.

Both sessions replay the same ~24-position brush sweep over grid-aligned
edges (the tile fast path — off-grid bounds fall back to requery and are
covered by the fuzz axis, not benchmarked here).  Per-event latency is
``result.breakdown.total``; every event's rows are checked equivalent
between the two sessions, so the speedup is never bought with a wrong
answer.  Writes ``BENCH_tiles.json``.

CI tripwire: the tiled path's median per-event latency must beat direct
requery by at least ``REPRO_BENCH_MIN_TILE_SPEEDUP`` (default 10.0; the
reduced-scale CI run relaxes it — at 0.2 scale the requery being beaten
is itself 5x cheaper while the slice cost is scale-invariant).
"""

import os

from conftest import (
    latency_summary,
    print_header,
    print_rows,
    scaled,
    write_bench_record,
)

from repro.core import VegaPlus
from repro.datagen import generate_flights
from repro.fuzz.normalize import canonical_rows, rows_equivalent

ROWS = 1_000_000

DASHBOARD = {
    "signals": [
        {"name": "lo", "value": 0.0,
         "bind": {"input": "range", "min": 0, "max": 3000}},
        {"name": "hi", "value": 3000.0,
         "bind": {"input": "range", "min": 0, "max": 3000}},
    ],
    "data": [
        {"name": "flights", "url": "synthetic://flights"},
        {"name": "hist", "source": "flights", "transform": [
            {"type": "filter",
             "expr": "datum.distance >= lo && datum.distance < hi"},
            {"type": "bin", "field": "dep_delay",
             "extent": [-30, 600], "maxbins": 30,
             "as": ["bin0", "bin1"]},
            {"type": "aggregate", "groupby": ["bin0", "bin1"],
             "ops": ["count"], "as": ["cnt"]},
        ]},
        {"name": "by_carrier", "source": "flights", "transform": [
            {"type": "filter",
             "expr": "datum.distance >= lo && datum.distance < hi"},
            {"type": "aggregate", "groupby": ["carrier"],
             "ops": ["count", "mean"], "fields": [None, "dep_delay"],
             "as": ["cnt", "avg_delay"]},
        ]},
    ],
    "marks": [
        {"type": "rect", "from": {"data": "hist"},
         "encode": {"update": {"x": {"field": "bin0"},
                               "x2": {"field": "bin1"},
                               "y": {"field": "cnt"}}}},
        {"type": "rect", "from": {"data": "by_carrier"},
         "encode": {"update": {"x": {"field": "carrier"},
                               "y": {"field": "cnt"},
                               "fill": {"field": "avg_delay"}}}},
    ],
}


def fresh_session(table, tiles):
    session = VegaPlus(
        DASHBOARD, data={"flights": table},
        latency_ms=0.0, bandwidth_mbps=100000.0, tiles=tiles)
    session.startup()
    return session


def brush_trace(session):
    """~24 brush positions on the tile grid's own edges: sweep the low
    bound up, then the high bound down."""
    entry = session.tiles._states["hist"]
    grid = entry.cube.grids[0]
    edges = [grid.edge(i) for i in range(grid.n_bins + 1)]
    stride = max(1, len(edges) // 12)
    lows = edges[:len(edges) // 2:stride]
    highs = list(reversed(edges[len(edges) // 2::stride]))
    return [("lo", value) for value in lows] \
        + [("hi", value) for value in highs]


def canon(session, sink):
    fields = session.compiled.spec.mark_fields(sink) or None
    return canonical_rows(session._sink_state(sink).rows, fields=fields)


def replay(session, trace, check_against=None):
    latencies = []
    for name, value in trace:
        result = session.interact(name, value)
        latencies.append(result.breakdown.total)
        if check_against is not None:
            check_against.interact(name, value)
            for sink in ("hist", "by_carrier"):
                assert rows_equivalent(
                    canon(session, sink), canon(check_against, sink)), \
                    "tiled != direct at {}={} sink={}".format(
                        name, value, sink)
    return latencies


def median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def test_e12_tile_index_speedup():
    num_rows = scaled(ROWS)
    table = generate_flights(num_rows)

    tiled = fresh_session(table, tiles="force")
    built = tiled.prewarm_tiles()
    assert built == 2, "both brushed views must tile"
    trace = brush_trace(tiled)

    direct = fresh_session(table, tiles=False)
    # one equivalence-checked pass (correctness, unmeasured) ...
    replay(fresh_session(table, tiles="force"), trace,
           check_against=fresh_session(table, tiles=False))
    # ... then the measured passes
    direct_lat = replay(direct, trace)
    tiled_lat = replay(tiled, trace)
    assert tiled.tiles.hits == len(trace) * 2, \
        "every event on both sinks must be a tile hit"

    speedup = median(direct_lat) / max(median(tiled_lat), 1e-9)
    stats = tiled.tiles.stats()
    record = {
        "rows": num_rows,
        "events": len(trace),
        "views": 2,
        "direct": latency_summary(direct_lat),
        "tiled": latency_summary(tiled_lat),
        "median_speedup": speedup,
        "tile_builds": stats["builds"],
        "tile_bytes": stats["bytes_built"],
        "build_seconds": sum(
            entry.build_seconds for entry in tiled.tiles._states.values()),
    }
    write_bench_record("tiles", record)

    print_header("E12: linked brushing, direct requery vs tile index")
    rows = []
    for mode, lat in (("direct", direct_lat), ("tiled", tiled_lat)):
        summary = latency_summary(lat)
        rows.append([mode, len(lat),
                     "{:.5f}".format(summary["p50_s"]),
                     "{:.5f}".format(summary["p95_s"]),
                     "{:.5f}".format(summary["p99_s"])])
    print_rows(["mode", "events", "p50(s)", "p95(s)", "p99(s)"], rows)
    print("\nmedian speedup: {:.1f}x  (build: {:.3f}s amortized over "
          "{} events x 2 views)".format(
              speedup, record["build_seconds"], len(trace)))

    floor = float(os.environ.get("REPRO_BENCH_MIN_TILE_SPEEDUP", "10.0"))
    assert speedup >= floor, (
        "tile index must beat direct requery by >= {}x "
        "(got {:.1f}x)".format(floor, speedup))
