"""Streaming data appends: §2.1's streaming dataflow model.

New flight records arrive in batches; each append flows into the backend
and the client source, invalidates caches and statistics, and triggers
re-planning.  Watch the optimizer flip the cut from client to server as
the dataset outgrows the browser.

Run with::

    python examples/streaming_updates.py
"""

from repro import VegaPlus
from repro.datagen import generate_flights
from repro.spec import flights_histogram_spec


def main():
    session = VegaPlus(
        flights_histogram_spec(),
        data={"flights": generate_flights(500, seed=1)},
        latency_ms=50,
    )
    result = session.startup()
    print("initial 500 rows: cut={}, startup {:.4f}s".format(
        session.plan.datasets["binned"].cut, result.total_seconds))

    batches = [2_000, 10_000, 50_000, 150_000]
    total = 500
    for index, batch in enumerate(batches):
        rows = generate_flights(batch, seed=100 + index, as_rows=True)
        result = session.append_data("flights", rows)
        total += batch
        plan = session.plan.datasets["binned"]
        histogram_total = sum(
            row["count"] for row in result.datasets["binned"]
        )
        print("after +{:>7} rows (total {:>7}): cut={} "
              "refresh {:.4f}s, histogram covers {:.0f} rows".format(
                  batch, total, plan.cut, result.total_seconds,
                  histogram_total))

    print("\ninteractions keep working on the grown dataset:")
    interaction = session.interact("maxbins", 50)
    print("  maxbins=50 -> {} bins in {:.4f}s".format(
        len(session.results("binned")), interaction.total_seconds))


if __name__ == "__main__":
    main()
