"""End-to-end tests of the differential fuzzing harness itself: a
bounded clean campaign, and the forced-failure pipeline (detect ->
shrink -> write a replayable ``repro_<seed>.py``)."""

import runpy

import pytest

from repro.fuzz import generate_case
from repro.fuzz.oracle import check_case
from repro.fuzz.runner import case_seed, run_campaign
from repro.fuzz.shrink import shrink_case

pytestmark = pytest.mark.differential


class TestGenerator:
    def test_deterministic(self):
        a = generate_case(123)
        b = generate_case(123)
        assert a.spec == b.spec
        assert a.tables == b.tables

    def test_distinct_seeds_differ(self):
        assert generate_case(1).spec != generate_case(2).spec

    def test_campaign_seeds_do_not_collide(self):
        first = {case_seed(7, i) for i in range(100)}
        second = {case_seed(8, i) for i in range(100)}
        assert not first & second


@pytest.mark.slow
class TestCleanCampaign:
    def test_bounded_campaign_finds_no_mismatches(self, tmp_path):
        result = run_campaign(
            seed=11, iterations=8, max_rows=25,
            out_dir=str(tmp_path), log=lambda message: None,
        )
        assert result.ok, result.describe()
        assert result.cases_run == 8


@pytest.mark.slow
class TestForcedFailurePipeline:
    """Inject a deliberate translation bug and require the harness to
    detect it, minimize it, and emit a self-contained repro file that
    replays clean once the bug is gone."""

    @pytest.fixture()
    def broken_sql_literal(self, monkeypatch):
        from repro.expr import sqlcompile

        original = sqlcompile.sql_literal

        def broken(value):
            if isinstance(value, float) and value == value \
                    and abs(value) not in (0.0, float("inf")):
                return original(value + 0.75)
            return original(value)

        monkeypatch.setattr(sqlcompile, "sql_literal", broken)

    def test_detect_shrink_and_replay(self, broken_sql_literal, tmp_path):
        result = run_campaign(
            seed=424242, iterations=40, max_rows=20, max_failures=1,
            check_optimizer=False, out_dir=str(tmp_path),
            log=lambda message: None,
        )
        assert result.failures, "injected bug was not detected"
        failure = result.failures[0]
        repro = tmp_path / "repro_{}.py".format(failure.case_seed)
        assert repro.exists()
        text = repro.read_text()
        assert "check_case" in text and str(failure.case_seed) in text

        # Shrinking must have actually reduced the case.
        original_case = generate_case(failure.case_seed)
        module = runpy.run_path(str(repro), run_name="repro")
        shrunk_tables = module["TABLES"]
        original_rows = sum(len(r) for r in original_case.tables.values())
        shrunk_rows = sum(len(r) for r in shrunk_tables.values())
        assert shrunk_rows <= original_rows

    def test_repro_replays_clean_without_the_bug(self, tmp_path):
        # With the injection gone, the same case must pass the oracle:
        # the repro demonstrates the bug only while the bug exists.
        with pytest.MonkeyPatch.context() as mp:
            from repro.expr import sqlcompile

            original = sqlcompile.sql_literal

            def broken(value):
                if isinstance(value, float) and value == value \
                        and abs(value) not in (0.0, float("inf")):
                    return original(value + 0.75)
                return original(value)

            mp.setattr(sqlcompile, "sql_literal", broken)
            result = run_campaign(
                seed=424242, iterations=40, max_rows=20, max_failures=1,
                check_optimizer=False, out_dir=str(tmp_path),
                log=lambda message: None,
            )
        assert result.failures
        seed = result.failures[0].case_seed
        report = check_case(generate_case(seed), check_optimizer=False)
        assert not report.mismatches, report.describe()


class TestShrinker:
    def test_signature_preserved(self):
        """The shrinker must not accept reductions that fail for a
        different reason than the original case."""
        case = generate_case(3)
        calls = {"count": 0}

        def predicate(candidate):
            calls["count"] += 1
            # Fails only while both tables keep at least 3 rows total.
            return candidate.total_rows() >= 3

        minimized, evals = shrink_case(case, is_failing=predicate,
                                       max_evals=60)
        assert minimized.total_rows() >= 3
        assert evals == calls["count"]

    def test_never_empties_a_table(self):
        case = generate_case(3)
        minimized, _ = shrink_case(
            case, is_failing=lambda candidate: True, max_evals=120,
        )
        for name, rows in minimized.tables.items():
            assert rows, "table {!r} was emptied".format(name)
            assert rows[0], "table {!r} lost every column".format(name)

    def test_non_failing_case_returned_unchanged(self):
        case = generate_case(5)
        minimized, evals = shrink_case(
            case, is_failing=lambda candidate: False,
        )
        assert evals == 1
        assert minimized.spec == case.spec
        assert minimized.tables == case.tables
