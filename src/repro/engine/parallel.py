"""Morsel-driven parallel execution of logical plans.

The serial interpreter in :mod:`repro.engine.executor` evaluates every
plan node on one thread.  This module adds the morsel-driven design of
Leis et al.: the rows flowing into a data-parallel operator are split
into fixed-size *morsels*, a shared :class:`ThreadPoolExecutor` runs the
operator's vectorized kernel per morsel (numpy releases the GIL inside
those kernels), and a merge step combines the partial results into an
answer canonically identical to the serial path:

* **Filter / Project** — embarrassingly parallel; per-morsel outputs are
  concatenated in morsel order, so row order is bit-identical to serial.
  Adjacent Filter/Project nodes fuse into one morsel pipeline (no
  intermediate materialization) outside of EXPLAIN ANALYZE.
* **Aggregate** — two-phase hash aggregation: each morsel factorizes its
  own group keys locally (one ``np.unique`` pass over small code arrays)
  and reduces partial states with ``bincount``/segmented kernels from
  :mod:`repro.data.grouping`; the merge re-factorizes the concatenated
  local key rows.  Group order equals the serial path because
  factorization order depends only on the distinct key values, and each
  group's key bytes come from its globally first row.  Floating-point
  SUM/AVG may differ from serial in the last bits (summation order);
  everything else is byte-identical.  Non-decomposable aggregates
  (MEDIAN, STDDEV, VARIANCE, QUANTILE, COUNT DISTINCT) fall back to the
  serial kernel.
* **Sort** — per-morsel stable argsort over a dense composite order code
  plus a final merge sort of the gathered runs (timsort exploits the
  presorted runs), reproducing the serial stable order exactly.  With a
  ``limit_hint`` and one key, the canonical top-N path selects per-morsel
  candidate pools instead.
* **Join** — equi-joins build shared dense key codes over both inputs,
  index the right side once, and probe left-side morsels in parallel;
  match emission order equals the serial hash join.
* **Window** — partitions are independent, so they are sharded across
  the pool; each shard runs the exact serial partition kernel against
  disjoint rows of the shared output arrays.
* **Distinct** — per-morsel local first-occurrence candidates, then one
  small global re-factorization over the surviving rows.

Operators that cannot use a parallel kernel fall back to the serial
applier and record a reason (surfaced as ``engine.fallback.<reason>``
telemetry counters and on EXPLAIN ANALYZE nodes):

=========================== ==============================================
reason                      trigger
=========================== ==============================================
``aggregate_nondecomposable``  an aggregate without mergeable partials
``aggregate_type``             SUM/AVG over VARCHAR (serial raises)
``sort_key_width``             composite sort code would overflow int64
``join_type_mismatch``         VARCHAR joined against a numeric key
``join_key_width``             composite join code would overflow int64
``window_single_partition``    nothing to shard (one or zero partitions)
=========================== ==============================================

Opt-in: ``Database(parallelism=4)`` or ``REPRO_THREADS=4``.  The default
is serial, so existing behaviour is unchanged.
"""

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.data.grouping import grouped_minmax
from repro.engine.errors import ExecutionError, PlanError
from repro.engine.eval import Frame, evaluate
from repro.engine.executor import (
    _aggregate_inputs,
    _concat_frames,
    _equi_keys,
    _topn_composite,
    _topn_select,
    apply_aggregate,
    apply_derived,
    apply_distinct,
    apply_filter,
    apply_join,
    apply_limit,
    apply_project,
    apply_scan,
    apply_sort,
    apply_window,
    factorize_column,
    factorize_rows_first,
    window_inputs,
    window_partition_kernel,
)
from repro.engine.logical import (
    Aggregate,
    Derived,
    Distinct,
    Filter,
    Join,
    Limit,
    Project,
    Scan,
    Sort,
    Window,
)
from repro.engine.sqlast import Star
from repro.engine.table import Column
from repro.engine.types import SQLType

#: default rows per morsel; override with ``REPRO_MORSEL_ROWS``
DEFAULT_MORSEL_ROWS = 65536

THREADS_ENV = "REPRO_THREADS"
MORSEL_ENV = "REPRO_MORSEL_ROWS"

#: composite integer codes (sort orders, join keys) must stay inside
#: int64; wider key spaces fall back to the serial operator
_MAX_CODE_WIDTH = 2 ** 62


class SerialFallback(Exception):
    """A parallel kernel declined this input; run the serial applier.

    ``reason`` is a stable identifier recorded per plan node and counted
    as ``engine.fallback.<reason>``.
    """

    def __init__(self, reason):
        super().__init__(reason)
        self.reason = reason


def resolve_parallelism(value=None):
    """Worker count: explicit value wins, then ``REPRO_THREADS``, then 1."""
    if value is None:
        value = os.environ.get(THREADS_ENV)
    if value in (None, ""):
        return 1
    workers = int(value)
    if workers < 1:
        raise ValueError("parallelism must be >= 1, got {}".format(workers))
    return workers


def resolve_morsel_rows(value=None):
    """Morsel size: explicit value wins, then ``REPRO_MORSEL_ROWS``."""
    if value is None:
        value = os.environ.get(MORSEL_ENV)
    if value in (None, ""):
        return DEFAULT_MORSEL_ROWS
    rows = int(value)
    if rows < 1:
        raise ValueError("morsel size must be >= 1, got {}".format(rows))
    return rows


# --------------------------------------------------------------------------
# Shared worker pools
#
# One process-wide pool per worker count: hundreds of short-lived
# Database instances (the fuzzer builds one per case) must not each spawn
# their own threads.  Pool threads are named ``repro-morsel<N>_<i>`` so a
# morsel can attribute itself to worker ``i``.
# --------------------------------------------------------------------------

_POOL_LOCK = threading.Lock()
_POOLS = {}


def shared_pool(workers):
    with _POOL_LOCK:
        pool = _POOLS.get(workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix="repro-morsel{}".format(workers),
            )
            _POOLS[workers] = pool
        return pool


def _worker_index():
    """Index of the current pool worker (from its thread name)."""
    name = threading.current_thread().name
    _, _, suffix = name.rpartition("_")
    try:
        return int(suffix)
    except ValueError:
        return 0


def slice_frame(frame, lo, hi):
    """Rows ``[lo, hi)`` of ``frame`` — zero-copy for contiguous (and
    memmap) columns; chunked columns materialize only the covered rows."""
    entries = [
        (qualifier, name, c.slice(lo, hi))
        for qualifier, name, c in frame.entries
    ]
    return Frame(entries, num_rows=hi - lo)


def frame_chunk_cuts(frame):
    """Union of every entry column's declared chunk boundaries, or None
    when no column declares any.  Morsels aligned to these cuts never
    cross a chunk edge, so per-morsel slices stay zero-copy."""
    cuts = None
    for _qualifier, _name, column in frame.entries:
        offsets = column.chunk_offsets()
        if offsets is not None:
            if cuts is None:
                cuts = {0, frame.num_rows}
            cuts.update(offsets)
    if cuts is None:
        return None
    return sorted(cuts)


def release_frame(frame, lo, hi):
    """Tell every disk-backed column of ``frame`` that rows ``[lo, hi)``
    were streamed past (safe no-op for RAM columns)."""
    for _qualifier, _name, column in frame.entries:
        column.release(lo, hi)


def concat_frame_parts(parts):
    """Ordered concatenation of per-morsel frames (morsel order = row
    order, so the result matches the serial operator exactly)."""
    if len(parts) == 1:
        return parts[0]
    num_rows = sum(part.num_rows for part in parts)
    entries = []
    for index, (qualifier, name, column) in enumerate(parts[0].entries):
        data = np.concatenate([part.entries[index][2].data for part in parts])
        valid = np.concatenate([part.entries[index][2].valid for part in parts])
        entries.append((qualifier, name, Column(column.type, data, valid)))
    return Frame(entries, num_rows=num_rows)


def _concat_columns(columns):
    if len(columns) == 1:
        return columns[0]
    return Column(
        columns[0].type,
        np.concatenate([column.data for column in columns]),
        np.concatenate([column.valid for column in columns]),
    )


def _apply_chain(frame, ops):
    """Apply a fused Filter/Project chain (bottom-to-top order)."""
    for op in ops:
        if isinstance(op, Filter):
            frame = apply_filter(op, frame)
        else:
            frame = apply_project(op, frame)
    return frame


# --------------------------------------------------------------------------
# Decomposable aggregate partial states
# --------------------------------------------------------------------------

#: aggregate call -> partial-state kind, or None when not decomposable
_DECOMPOSABLE = {"SUM": "sum", "AVG": "avg", "MIN": "min", "MAX": "max"}


def partial_kind(call):
    """Partial-state kind for a decomposable aggregate call, else None."""
    if call.distinct:
        return None
    name = call.name.upper()
    if name == "COUNT":
        star = len(call.args) == 1 and isinstance(call.args[0], Star)
        return "count_star" if star else "count"
    return _DECOMPOSABLE.get(name)


def _local_aggregate(kind, arg_column, group_ids, group_count):
    """Per-morsel partial state aligned to the morsel's local group ids.

    count kinds -> ``(counts,)``; sum/avg -> ``(sums, counts)``;
    min/max -> ``(values, present)``.  NaN flows through sums and
    extremes exactly like the serial kernels (it later folds to NULL in
    ``Column.from_values``).
    """
    if kind == "count_star":
        counts = np.bincount(group_ids, minlength=group_count)
        return (counts.astype(np.float64),)
    valid = arg_column.valid
    if kind == "count":
        counts = np.bincount(group_ids[valid], minlength=group_count)
        return (counts.astype(np.float64),)
    data = arg_column.data
    if kind in ("sum", "avg"):
        weights = data[valid]
        if weights.dtype != np.float64:
            weights = weights.astype(np.float64)
        sums = np.bincount(
            group_ids[valid], weights=weights, minlength=group_count
        )
        counts = np.bincount(group_ids[valid], minlength=group_count)
        return (sums, counts.astype(np.float64))
    reducer = np.minimum if kind == "min" else np.maximum
    values, present = grouped_minmax(
        data, group_ids, group_count, valid, reducer
    )
    return (values, present)


def _merge_states(kind, states, group_ids, group_count):
    """Merge concatenated per-morsel partial states into final per-group
    python values (None for groups with no valid input), matching the
    serial aggregate kernels.  ``group_ids`` maps each concatenated
    local-group row to its global group."""
    if kind in ("count", "count_star"):
        totals = np.bincount(
            group_ids,
            weights=np.concatenate([state[0] for state in states]),
            minlength=group_count,
        )
        return [float(total) for total in totals]
    if kind in ("sum", "avg"):
        sums = np.bincount(
            group_ids,
            weights=np.concatenate([state[0] for state in states]),
            minlength=group_count,
        )
        counts = np.bincount(
            group_ids,
            weights=np.concatenate([state[1] for state in states]),
            minlength=group_count,
        )
        if kind == "sum":
            return [
                float(total) if count else None
                for total, count in zip(sums, counts)
            ]
        return [
            float(total / count) if count else None
            for total, count in zip(sums, counts)
        ]
    reducer = np.minimum if kind == "min" else np.maximum
    values, present = grouped_minmax(
        np.concatenate([state[0] for state in states]),
        group_ids,
        group_count,
        np.concatenate([state[1] for state in states]),
        reducer,
    )
    return [
        (value if isinstance(value, str) else float(value)) if ok else None
        for value, ok in zip(values, present)
    ]


# --------------------------------------------------------------------------
# Composite order / join codes
# --------------------------------------------------------------------------


def _order_codes(plan, table):
    """One dense int64 code per row whose ascending stable order equals
    the serial ``_sorted_indices`` order for ``plan.keys``.

    Per key column: valid values get their rank among the distinct
    (possibly negated for DESC) values — NaN collapses to the highest
    rank, like every numpy sort — and NULL gets a dedicated code before
    or after the value range per the requested placement.  Codes combine
    mixed-radix across columns.
    """
    combined = np.zeros(table.num_rows, dtype=np.int64)
    width = 1
    for name, descending, nulls_first in plan.keys:
        column = table.column(name)
        if column.type is SQLType.VARCHAR:
            codes, _ = factorize_column(column)
            values = codes.astype(np.float64)
        else:
            values = column.data.astype(np.float64)
        if descending:
            values = -values
        values = np.where(column.valid, values, 0.0)
        uniques, inverse = np.unique(values, return_inverse=True)
        value_code = inverse.astype(np.int64)
        null_first = descending if nulls_first is None else bool(nulls_first)
        if null_first:
            code = np.where(column.valid, value_code + 1, np.int64(0))
        else:
            code = np.where(column.valid, value_code, np.int64(len(uniques)))
        cardinality = len(uniques) + 1
        width *= cardinality
        if width > _MAX_CODE_WIDTH:
            raise SerialFallback("sort_key_width")
        combined = combined * np.int64(cardinality) + code
    return combined


def _join_codes(left_keys, right_keys, left_rows, right_rows):
    """Shared dense int64 codes for eligible join rows of both sides.

    Both columns of a key pair factorize against the union of their
    distinct values, so equal values get equal codes across sides —
    exactly the matches the serial hash join's python-value dictionary
    produces (booleans compare equal to 0.0/1.0; NULL and NaN keys are
    already excluded from ``left_rows``/``right_rows``).
    """
    left_combined = np.zeros(len(left_rows), dtype=np.int64)
    right_combined = np.zeros(len(right_rows), dtype=np.int64)
    width = 1
    for left_column, right_column in zip(left_keys, right_keys):
        if left_column.type is SQLType.VARCHAR:
            left_values = left_column.data[left_rows]
            right_values = right_column.data[right_rows]
        else:
            left_values = left_column.data.astype(np.float64)[left_rows]
            right_values = right_column.data.astype(np.float64)[right_rows]
        uniques = np.unique(np.concatenate([left_values, right_values]))
        left_code = np.searchsorted(uniques, left_values).astype(np.int64)
        right_code = np.searchsorted(uniques, right_values).astype(np.int64)
        cardinality = max(len(uniques), 1)
        width *= cardinality
        if width > _MAX_CODE_WIDTH:
            raise SerialFallback("join_key_width")
        left_combined = left_combined * np.int64(cardinality) + left_code
        right_combined = right_combined * np.int64(cardinality) + right_code
    return left_combined, right_combined


# --------------------------------------------------------------------------
# The executor
# --------------------------------------------------------------------------


class MorselExecutor:
    """Executes logical plans with morsel-driven parallelism.

    Splitting only engages when an operator's input holds at least two
    morsels; smaller inputs (and inputs a parallel kernel declines via
    :class:`SerialFallback`) run the exact serial appliers, so every
    branch is equivalence-preserving by construction.
    """

    def __init__(self, workers, morsel_rows=None, pool=None):
        self.workers = max(int(workers), 1)
        self.morsel_rows = resolve_morsel_rows(morsel_rows)
        self.pool = pool if pool is not None else shared_pool(self.workers)

    def execute(self, plan, catalog):
        """Execute ``plan`` and return the result Table."""
        run = _ParallelRun(self, catalog, collect_stats=False)
        return run.execute(plan).to_table()

    def execute_with_stats(self, plan, catalog):
        """Like :func:`repro.engine.executor.execute_with_stats`, plus a
        per-node morsel log and serial-fallback reasons.

        Returns ``(table, stats, morsels, fallbacks)``: ``stats`` maps
        ``id(node)`` to ``(output_rows, seconds)`` (child-inclusive,
        like EXPLAIN ANALYZE); ``morsels`` maps ``id(node)`` to a list
        of per-morsel records (index, op, worker, rows_in, rows_out,
        seconds) for nodes that actually split; ``fallbacks`` maps
        ``id(node)`` to the reason a parallel kernel declined the node.
        Unlike the serial path this keeps all state per-call, so
        concurrent queries on one Database are safe.
        """
        run = _ParallelRun(self, catalog, collect_stats=True)
        frame = run.execute(plan)
        morsels = {
            node_id: sorted(records, key=lambda record: record["index"])
            for node_id, records in run.morsels.items()
        }
        return frame.to_table(), run.stats, morsels, run.fallbacks


def _task_thunk(task, lo, hi):
    def thunk():
        return task(lo, hi)

    return thunk


class _ParallelRun:
    """State of one plan execution: per-node stats, morsel logs, and
    serial-fallback reasons.

    Outside of stats collection (``Database.execute``), adjacent
    Filter/Project nodes fuse into their consumer's morsel tasks so a
    scan -> filter -> aggregate pipeline touches each morsel once.
    EXPLAIN ANALYZE disables fusion to keep per-node cardinalities and
    timings exact.
    """

    def __init__(self, executor, catalog, collect_stats):
        self.executor = executor
        self.catalog = catalog
        self.collect_stats = collect_stats
        self.stats = {}
        self.morsels = {}
        self.fallbacks = {}
        self.fallback_counts = {}
        self._fuse = not collect_stats
        self._lock = threading.Lock()

    # -- plan walk ---------------------------------------------------------

    def execute(self, plan):
        if not self.collect_stats:
            return self._execute_node(plan)
        start = time.perf_counter()
        frame = self._execute_node(plan)
        self.stats[id(plan)] = (frame.num_rows, time.perf_counter() - start)
        return frame

    def _execute_node(self, plan):
        if isinstance(plan, Scan):
            return apply_scan(plan, self.catalog)
        if isinstance(plan, Derived):
            return apply_derived(plan, self.execute(plan.child))
        if isinstance(plan, (Filter, Project)):
            return self._execute_chain(plan)
        if isinstance(plan, Aggregate):
            return self._execute_aggregate(plan)
        if isinstance(plan, Window):
            return self._execute_window(plan, self.execute(plan.child))
        if isinstance(plan, Distinct):
            return self._execute_distinct(plan, self.execute(plan.child))
        if isinstance(plan, Sort):
            return self._execute_sort(plan, self.execute(plan.child))
        if isinstance(plan, Limit):
            return apply_limit(plan, self.execute(plan.child))
        if isinstance(plan, Join):
            return self._execute_join(
                plan, self.execute(plan.left), self.execute(plan.right)
            )
        raise ExecutionError("unsupported plan node {!r}".format(plan))

    def _record_fallback(self, node, reason):
        self.fallbacks[id(node)] = reason
        with self._lock:
            self.fallback_counts[reason] = (
                self.fallback_counts.get(reason, 0) + 1
            )
        # Always-on plane: fallbacks are a fleet-level signal (a new query
        # shape silently losing parallelism), so they land in the process
        # registry as a labeled counter regardless of tracing.
        from repro.metrics import get_registry

        get_registry().inc("engine.fallback", reason=reason)

    # -- morsel machinery --------------------------------------------------

    def _should_split(self, num_rows):
        return num_rows > self.executor.morsel_rows

    def _bounds(self, num_rows, cuts=None):
        """Morsel row ranges.  With ``cuts`` (chunk boundaries), morsels
        subdivide each chunk but never span two — every morsel's slice of
        a chunked column is then a single zero-copy chunk view."""
        step = self.executor.morsel_rows
        if cuts is None:
            return [
                (lo, min(lo + step, num_rows))
                for lo in range(0, num_rows, step)
            ]
        bounds = []
        for chunk_lo, chunk_hi in zip(cuts, cuts[1:]):
            chunk_hi = min(chunk_hi, num_rows)
            for lo in range(chunk_lo, chunk_hi, step):
                bounds.append((lo, min(lo + step, chunk_hi)))
        return bounds

    def _run_tasks(self, node, op, tasks):
        """Run ``tasks`` — a list of ``(rows_in, thunk)`` where
        ``thunk() -> (result, rows_out)`` — on the shared pool; returns
        results in task order."""
        futures = [
            self.executor.pool.submit(
                self._run_task, node, op, index, rows_in, thunk
            )
            for index, (rows_in, thunk) in enumerate(tasks)
        ]
        return [future.result() for future in futures]

    def _run_task(self, node, op, index, rows_in, thunk):
        start = time.perf_counter()
        result, rows_out = thunk()
        seconds = time.perf_counter() - start
        if self.collect_stats:
            record = {
                "index": index,
                "op": op,
                "worker": _worker_index(),
                "rows_in": int(rows_in),
                "rows_out": int(rows_out),
                "seconds": seconds,
            }
            with self._lock:
                self.morsels.setdefault(id(node), []).append(record)
        return result

    def _map_morsels(self, node, op, num_rows, task, cuts=None):
        """Run ``task(lo, hi) -> (result, rows_out)`` for every morsel on
        the shared pool; returns results in morsel order."""
        tasks = [
            (hi - lo, _task_thunk(task, lo, hi))
            for lo, hi in self._bounds(num_rows, cuts)
        ]
        return self._run_tasks(node, op, tasks)

    # -- fused filter/project chains ---------------------------------------

    def _gather_chain(self, node):
        """Fusable Filter/Project nodes below (and including) ``node``,
        bottom-to-top, plus the base node feeding the chain.  Descends
        only while fusion is enabled (i.e. never under EXPLAIN
        ANALYZE)."""
        ops = [node]
        node = node.child
        while self._fuse and isinstance(node, (Filter, Project)):
            ops.append(node)
            node = node.child
        ops.reverse()
        return ops, node

    def _execute_chain(self, plan):
        ops, base_node = self._gather_chain(plan)
        base = self.execute(base_node)
        return self._chain_result(plan, ops, base)

    def _chain_result(self, top, ops, base):
        if not self._should_split(base.num_rows):
            return _apply_chain(base, ops)

        def task(lo, hi):
            out = _apply_chain(slice_frame(base, lo, hi), ops)
            return out, out.num_rows

        op = "filter" if isinstance(top, Filter) else "project"
        parts = self._map_morsels(
            top, op, base.num_rows, task, cuts=frame_chunk_cuts(base)
        )
        return concat_frame_parts(parts)

    # -- aggregate ---------------------------------------------------------

    def _execute_aggregate(self, plan):
        ops = []
        node = plan.child
        while self._fuse and isinstance(node, (Filter, Project)):
            ops.append(node)
            node = node.child
        ops.reverse()
        base = self.execute(node)

        if not self._should_split(base.num_rows):
            return apply_aggregate(plan, _apply_chain(base, ops))

        kinds = [partial_kind(call) for call, _ in plan.aggregates]
        if not all(kind is not None for kind in kinds):
            self._record_fallback(plan, "aggregate_nondecomposable")
            return apply_aggregate(plan, self._materialize_chain(ops, base))

        # Probe a zero-row slice through the chain for the output schema
        # (key and result types) without touching any data.
        probe = _apply_chain(slice_frame(base, 0, 0), ops)
        try:
            key_types = [
                evaluate(expr, probe).type for expr, _ in plan.groups
            ]
            inputs = [
                _aggregate_inputs(call, probe) for call, _ in plan.aggregates
            ]
            for kind, (_, arg_column, _) in zip(kinds, inputs):
                if kind in ("sum", "avg") and (
                    arg_column.type is SQLType.VARCHAR
                ):
                    raise SerialFallback("aggregate_type")
        except SerialFallback as fallback:
            self._record_fallback(plan, fallback.reason)
            return apply_aggregate(plan, self._materialize_chain(ops, base))
        except (ExecutionError, PlanError):
            # The serial path raises (or handles) the error identically.
            return apply_aggregate(plan, self._materialize_chain(ops, base))
        result_types = [result_type for _, _, result_type in inputs]

        def task(lo, hi):
            frame = _apply_chain(slice_frame(base, lo, hi), ops)
            key_columns = [evaluate(expr, frame) for expr, _ in plan.groups]
            group_ids, group_count, first = factorize_rows_first(
                key_columns, frame.num_rows
            )
            if group_count == 0:
                release_frame(base, lo, hi)
                return None, 0
            local_keys = [column.take(first) for column in key_columns]
            states = []
            for kind, (call, _) in zip(kinds, plan.aggregates):
                _, arg_column, _ = _aggregate_inputs(call, frame)
                states.append(
                    _local_aggregate(kind, arg_column, group_ids, group_count)
                )
            # Partial states and gathered keys are copies, so the morsel's
            # source pages can be dropped: this is what keeps a streaming
            # aggregate over a memmap column at O(morsel) resident bytes.
            release_frame(base, lo, hi)
            return (local_keys, states, group_count), group_count

        results = self._map_morsels(
            plan, "aggregate", base.num_rows, task,
            cuts=frame_chunk_cuts(base),
        )
        parts = [result for result in results if result is not None]
        if not parts:
            return self._empty_aggregate(plan, key_types, kinds, result_types)
        return self._merge_aggregate(plan, kinds, result_types, parts)

    def _materialize_chain(self, ops, base):
        if not ops:
            return base
        return self._chain_result(ops[-1], ops, base)

    def _empty_aggregate(self, plan, key_types, kinds, result_types):
        """Every morsel came up empty: replicate the serial executor's
        empty-input edge cases exactly."""
        if plan.groups:
            entries = [
                (None, name, Column.from_values([], key_type))
                for key_type, (_, name) in zip(key_types, plan.groups)
            ]
            for _, name in plan.aggregates:
                entries.append(
                    (None, name, Column.from_values([], SQLType.DOUBLE))
                )
            return Frame(entries, num_rows=0)
        entries = []
        for kind, result_type, (_, name) in zip(
            kinds, result_types, plan.aggregates
        ):
            value = 0.0 if kind in ("count", "count_star") else None
            entries.append(
                (None, name, Column.from_values([value], result_type))
            )
        return Frame(entries, num_rows=1)

    def _merge_aggregate(self, plan, kinds, result_types, parts):
        """Associative columnar merge of the per-morsel partial states.

        Concatenating each morsel's local group keys (in morsel order)
        and re-factorizing yields the serial group order — factorization
        order depends only on the distinct key values — and each group's
        first concatenated row is its globally first input row, so the
        key bytes match the serial output exactly.
        """
        cat_keys = [
            _concat_columns([part[0][position] for part in parts])
            for position in range(len(plan.groups))
        ]
        total = sum(part[2] for part in parts)
        group_ids, group_count, first = factorize_rows_first(cat_keys, total)
        entries = [
            (None, name, cat_keys[position].take(first))
            for position, (_, name) in enumerate(plan.groups)
        ]
        for position, ((_, name), kind, result_type) in enumerate(
            zip(plan.aggregates, kinds, result_types)
        ):
            states = [part[1][position] for part in parts]
            values = _merge_states(kind, states, group_ids, group_count)
            entries.append(
                (None, name, Column.from_values(values, result_type))
            )
        return Frame(entries, num_rows=group_count)

    # -- sort --------------------------------------------------------------

    def _execute_sort(self, plan, child):
        table = child.to_table()
        num_rows = table.num_rows
        if not self._should_split(num_rows):
            return apply_sort(plan, child)
        limit = plan.limit_hint
        if (
            limit is not None
            and len(plan.keys) == 1
            and 0 < limit < num_rows // 4
        ):
            return self._sort_topn(plan, table, limit)
        try:
            combined = _order_codes(plan, table)
        except SerialFallback as fallback:
            self._record_fallback(plan, fallback.reason)
            return apply_sort(plan, child)

        def task(lo, hi):
            run = np.argsort(combined[lo:hi], kind="stable") + lo
            return run, hi - lo

        runs = np.concatenate(
            self._map_morsels(plan, "sort", num_rows, task)
        )
        # Stable argsort over the gathered runs is the k-way merge: equal
        # codes keep their run (= row) order, so this equals the serial
        # stable sort exactly; timsort exploits the presorted runs.
        order = runs[np.argsort(combined[runs], kind="stable")]
        if self._fuse and limit is not None:
            # limit_hint is only set when a Limit consumes this Sort
            # directly; rows past limit+offset can never be observed.
            order = order[:limit]
        return _sorted_result(plan, table, order)

    def _sort_topn(self, plan, table, limit):
        name, descending, nulls_first = plan.keys[0]
        composite = _topn_composite(
            (table.column(name), descending, nulls_first)
        )

        def task(lo, hi):
            candidates = _topn_select(composite, np.arange(lo, hi), limit)
            return candidates, len(candidates)

        parts = self._map_morsels(plan, "sort", table.num_rows, task)
        pool = np.concatenate(parts)
        ordered = _topn_select(composite, pool, limit)
        if self._fuse:
            order = ordered
        else:
            rest = np.setdiff1d(
                np.arange(table.num_rows), ordered, assume_unique=False
            )
            order = np.concatenate([ordered, rest])
        return _sorted_result(plan, table, order)

    # -- join --------------------------------------------------------------

    def _execute_join(self, plan, left, right):
        if not self._should_split(left.num_rows):
            return apply_join(plan, left, right)
        try:
            return self._join_parallel(plan, left, right)
        except SerialFallback as fallback:
            self._record_fallback(plan, fallback.reason)
            return apply_join(plan, left, right)

    def _join_parallel(self, plan, left, right):
        left_exprs, right_exprs = _equi_keys(plan.condition, left, right)
        left_keys = [evaluate(expr, left) for expr in left_exprs]
        right_keys = [evaluate(expr, right) for expr in right_exprs]

        left_ok = np.ones(left.num_rows, dtype=np.bool_)
        right_ok = np.ones(right.num_rows, dtype=np.bool_)
        for left_column, right_column in zip(left_keys, right_keys):
            left_str = left_column.type is SQLType.VARCHAR
            right_str = right_column.type is SQLType.VARCHAR
            if left_str != right_str:
                raise SerialFallback("join_type_mismatch")
            left_ok &= left_column.valid
            right_ok &= right_column.valid
            if not left_str:
                # NaN keys never match in the serial hash join (NaN !=
                # NaN as a python dict key), so they are ineligible.
                with np.errstate(invalid="ignore"):
                    if left_column.type is SQLType.DOUBLE:
                        left_ok &= ~np.isnan(left_column.data)
                    if right_column.type is SQLType.DOUBLE:
                        right_ok &= ~np.isnan(right_column.data)
        left_rows = np.flatnonzero(left_ok)
        right_rows = np.flatnonzero(right_ok)

        left_codes, right_codes = _join_codes(
            left_keys, right_keys, left_rows, right_rows
        )

        # Build side: group eligible right rows by code, preserving row
        # order within each code (= the serial dict's insertion order).
        build_order = np.argsort(right_codes, kind="stable")
        right_sorted_rows = right_rows[build_order]
        sorted_codes = right_codes[build_order]
        if len(sorted_codes):
            starts = np.flatnonzero(
                np.r_[True, sorted_codes[1:] != sorted_codes[:-1]]
            )
            unique_codes = sorted_codes[starts]
            counts = np.diff(np.r_[starts, len(sorted_codes)])
        else:
            starts = np.zeros(0, dtype=np.int64)
            unique_codes = np.zeros(0, dtype=np.int64)
            counts = np.zeros(0, dtype=np.int64)

        left_join = plan.kind == "LEFT"

        def task(lo, hi):
            begin = np.searchsorted(left_rows, lo)
            end = np.searchsorted(left_rows, hi)
            rows = left_rows[begin:end]
            codes = left_codes[begin:end]
            if len(unique_codes):
                positions = np.searchsorted(unique_codes, codes)
                positions = np.clip(positions, 0, len(unique_codes) - 1)
                match = unique_codes[positions] == codes
            else:
                positions = np.zeros(len(codes), dtype=np.int64)
                match = np.zeros(len(codes), dtype=np.bool_)
            per_row = np.where(match, counts[positions], 0)
            left_idx = np.repeat(rows, per_row)
            matched_positions = positions[match]
            match_counts = counts[matched_positions]
            segment_base = np.repeat(starts[matched_positions], match_counts)
            total = int(match_counts.sum())
            offsets = np.arange(total) - np.repeat(
                np.cumsum(match_counts) - match_counts, match_counts
            )
            right_idx = right_sorted_rows[segment_base + offsets]
            if left_join:
                unmatched = np.setdiff1d(
                    np.arange(lo, hi), rows[match], assume_unique=True
                )
            else:
                unmatched = np.zeros(0, dtype=np.int64)
            return (left_idx, right_idx, unmatched), total + len(unmatched)

        parts = self._map_morsels(plan, "join", left.num_rows, task)
        left_idx = np.concatenate([part[0] for part in parts])
        right_idx = np.concatenate([part[1] for part in parts])
        unmatched = np.concatenate([part[2] for part in parts])

        matched_left = left.take(left_idx)
        matched_right = right.take(right_idx)
        entries = list(matched_left.entries) + list(matched_right.entries)
        result = Frame(entries, num_rows=len(left_idx))

        if left_join and len(unmatched):
            pad_left = left.take(unmatched)
            pad_entries = list(pad_left.entries)
            for qualifier, column_name, column in right.entries:
                pad_entries.append(
                    (
                        qualifier,
                        column_name,
                        Column.nulls(column.type, len(unmatched)),
                    )
                )
            pad_frame = Frame(pad_entries, num_rows=len(unmatched))
            result = _concat_frames(result, pad_frame)
        return result

    # -- window ------------------------------------------------------------

    def _execute_window(self, plan, child):
        if not self._should_split(child.num_rows):
            return apply_window(plan, child)
        entries = list(child.entries)
        for window, name in plan.items:
            entries.append((None, name, self._window_column(plan, window, child)))
        return Frame(entries, num_rows=child.num_rows)

    def _window_column(self, node, window, frame):
        func_name, groups, order_keys, arg_column, out, out_valid = (
            window_inputs(window, frame)
        )
        if len(groups) <= 1:
            self._record_fallback(node, "window_single_partition")
            for indices in groups:
                window_partition_kernel(
                    window, func_name, order_keys, arg_column, indices,
                    out, out_valid,
                )
            return Column(SQLType.DOUBLE, out, out_valid)

        chunks = np.array_split(
            np.arange(len(groups)),
            min(len(groups), self.executor.workers * 4),
        )

        def shard_thunk(chunk):
            def thunk():
                rows = 0
                for group_index in chunk:
                    indices = groups[group_index]
                    window_partition_kernel(
                        window, func_name, order_keys, arg_column, indices,
                        out, out_valid,
                    )
                    rows += len(indices)
                return None, rows

            return thunk

        tasks = [
            (
                sum(len(groups[group_index]) for group_index in chunk),
                shard_thunk(chunk),
            )
            for chunk in chunks
            if len(chunk)
        ]
        self._run_tasks(node, "window", tasks)
        return Column(SQLType.DOUBLE, out, out_valid)

    # -- distinct ----------------------------------------------------------

    def _execute_distinct(self, plan, child):
        if not self._should_split(child.num_rows):
            return apply_distinct(plan, child)
        columns = [column for _, _, column in child.entries]

        def task(lo, hi):
            part = [c.slice(lo, hi) for c in columns]
            _, _, first = factorize_rows_first(part, hi - lo)
            candidates = np.sort(first) + lo
            return candidates, len(candidates)

        parts = self._map_morsels(
            plan, "distinct", child.num_rows, task,
            cuts=frame_chunk_cuts(child),
        )
        # Candidates are globally ascending (sorted per morsel, morsels in
        # order), so each value's first candidate is its globally first
        # row — re-factorizing the survivors reproduces the serial output
        # byte-for-byte, including row order.
        candidates = np.concatenate(parts)
        survivors = child.take(candidates)
        _, _, first = factorize_rows_first(
            [column for _, _, column in survivors.entries],
            survivors.num_rows,
        )
        return survivors.take(first)


def _sorted_result(plan, table, order):
    """Shared tail of the Sort paths: gather + drop hidden key columns
    (mirrors :func:`repro.engine.executor.apply_sort`)."""
    sorted_frame = Frame.from_table(table.take(order))
    if plan.drop:
        entries = [
            (qualifier, name, column)
            for qualifier, name, column in sorted_frame.entries
            if name not in plan.drop
        ]
        return Frame(entries, num_rows=sorted_frame.num_rows)
    return sorted_frame
