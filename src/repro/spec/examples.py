"""Built-in example specifications, mirroring the paper's demo scenarios.

* :func:`flights_histogram_spec` — §3 "US Airline Flights": a record-count
  histogram over a user-selected field, with a bin-count slider (Figure 2).
* :func:`census_stacked_area_spec` — §3 "Census-based Occupation History":
  a stacked area chart of occupation frequencies by year, filterable by a
  sex radio button and a regex job search box (Figure 3's pipeline).
"""


def flights_histogram_spec(field="dep_delay", maxbins=20):
    """The flights record-count histogram spec (Figure 2).

    Signals: ``binField`` (drop-down over data fields) and ``maxbins``
    (slider).  The pipeline is extent -> bin -> aggregate, exactly the
    plan shown in the paper's performance view ("the extent, bin, and
    aggregate operators are all placed on the server").
    """
    return {
        "description": "US Airline Flights record-count histogram",
        "width": 500,
        "height": 200,
        "signals": [
            {
                "name": "binField",
                "value": field,
                "bind": {
                    "input": "select",
                    "options": [
                        "dep_delay", "arr_delay", "distance", "air_time",
                    ],
                },
            },
            {
                "name": "maxbins",
                "value": maxbins,
                "bind": {"input": "range", "min": 5, "max": 100, "step": 1},
            },
        ],
        "data": [
            {"name": "flights", "url": "synthetic://flights"},
            {
                "name": "binned",
                "source": "flights",
                "transform": [
                    {
                        "type": "extent",
                        "field": {"signal": "binField"},
                        "signal": "ext",
                    },
                    {
                        "type": "bin",
                        "field": {"signal": "binField"},
                        "extent": {"signal": "ext"},
                        "maxbins": {"signal": "maxbins"},
                    },
                    {
                        "type": "aggregate",
                        "groupby": ["bin0", "bin1"],
                        "ops": ["count"],
                        "as": ["count"],
                    },
                ],
            },
        ],
        "scales": [
            {
                "name": "xscale",
                "type": "linear",
                "domain": {"data": "binned", "fields": ["bin0", "bin1"]},
                "range": "width",
            },
            {
                "name": "yscale",
                "type": "linear",
                "domain": {"data": "binned", "field": "count"},
                "range": "height",
            },
        ],
        "marks": [
            {
                "type": "rect",
                "from": {"data": "binned"},
                "encode": {
                    "update": {
                        "x": {"scale": "xscale", "field": "bin0"},
                        "x2": {"scale": "xscale", "field": "bin1"},
                        "y": {"scale": "yscale", "field": "count"},
                        "y2": {"scale": "yscale", "value": 0},
                    }
                },
            }
        ],
    }


def census_stacked_area_spec(sex="all", search=""):
    """The census occupation stacked-area spec (§3, second scenario).

    Signals: ``sexFilter`` (radio: all/male/female) and ``searchPattern``
    (regex search box over job names).  The pipeline filters, aggregates
    per (year, job), then stacks.
    """
    return {
        "description": "Census occupation history stacked area",
        "width": 600,
        "height": 300,
        "signals": [
            {
                "name": "sexFilter",
                "value": sex,
                "bind": {"input": "radio", "options": ["all", "male", "female"]},
            },
            {
                "name": "searchPattern",
                "value": search,
                "bind": {"input": "text"},
            },
        ],
        "data": [
            {"name": "census", "url": "synthetic://census"},
            {
                "name": "stacked",
                "source": "census",
                "transform": [
                    {
                        "type": "filter",
                        "expr": "sexFilter == 'all' || datum.sex == sexFilter",
                    },
                    {
                        "type": "filter",
                        "expr": "searchPattern == '' || "
                                "test(searchPattern, datum.job)",
                    },
                    {
                        "type": "aggregate",
                        "groupby": ["year", "job"],
                        "ops": ["sum"],
                        "fields": ["count"],
                        "as": ["total"],
                    },
                    {
                        "type": "stack",
                        "groupby": ["year"],
                        "sort": {"field": "job"},
                        "field": "total",
                    },
                ],
            },
        ],
        "scales": [
            {
                "name": "xscale",
                "type": "linear",
                "domain": {"data": "stacked", "field": "year"},
                "range": "width",
            },
            {
                "name": "yscale",
                "type": "linear",
                "domain": {"data": "stacked", "field": "y1"},
                "range": "height",
            },
        ],
        "marks": [
            {
                "type": "area",
                "from": {"data": "stacked"},
                "encode": {
                    "update": {
                        "x": {"scale": "xscale", "field": "year"},
                        "y": {"scale": "yscale", "field": "y0"},
                        "y2": {"scale": "yscale", "field": "y1"},
                        "fill": {"field": "job"},
                    }
                },
            }
        ],
    }


def flights_scatter_spec(sample_size=3000):
    """A scatterplot of distance vs air time with a regression overlay.

    A third demo-style scenario composed from the same dataset: the
    scatter samples the raw data (sample has no SQL form, so the planner
    must keep it client-side), while the trend dataset fits a linear
    regression over the *full* data — its filter still offloads.
    """
    return {
        "description": "Flights distance vs air time with linear trend",
        "width": 500,
        "height": 300,
        "signals": [
            {
                "name": "carrierFilter",
                "value": "all",
                "bind": {"input": "select",
                         "options": ["all", "AA", "DL", "UA", "WN"]},
            },
        ],
        "data": [
            {"name": "flights", "url": "synthetic://flights"},
            {
                "name": "points",
                "source": "flights",
                "transform": [
                    {"type": "filter",
                     "expr": "carrierFilter == 'all' || "
                             "datum.carrier == carrierFilter"},
                    {"type": "sample", "size": sample_size, "seed": 7},
                    {"type": "project",
                     "fields": ["distance", "air_time", "carrier"]},
                ],
            },
            {
                "name": "trend",
                "source": "flights",
                "transform": [
                    {"type": "filter",
                     "expr": "carrierFilter == 'all' || "
                             "datum.carrier == carrierFilter"},
                    {"type": "regression", "x": "distance", "y": "air_time"},
                ],
            },
        ],
        "scales": [
            {
                "name": "xscale",
                "type": "linear",
                "domain": {"data": "points", "field": "distance"},
                "range": "width",
            },
            {
                "name": "yscale",
                "type": "linear",
                "domain": {"data": "points", "field": "air_time"},
                "range": "height",
            },
        ],
        "marks": [
            {
                "type": "symbol",
                "from": {"data": "points"},
                "encode": {
                    "update": {
                        "x": {"scale": "xscale", "field": "distance"},
                        "y": {"scale": "yscale", "field": "air_time"},
                        "fill": {"field": "carrier"},
                    }
                },
            },
            {
                "type": "line",
                "from": {"data": "trend"},
                "encode": {
                    "update": {
                        "x": {"scale": "xscale", "field": "distance"},
                        "y": {"scale": "yscale", "field": "air_time"},
                    }
                },
            },
        ],
    }


def simple_filter_spec(threshold=10):
    """A minimal one-transform spec used by tests and the quickstart."""
    return {
        "signals": [
            {
                "name": "threshold",
                "value": threshold,
                "bind": {"input": "range", "min": 0, "max": 100},
            }
        ],
        "data": [
            {"name": "events", "url": "synthetic://events"},
            {
                "name": "big",
                "source": "events",
                "transform": [
                    {"type": "filter", "expr": "datum.value >= threshold"},
                    {
                        "type": "aggregate",
                        "groupby": ["category"],
                        "ops": ["count", "sum"],
                        "fields": [None, "value"],
                        "as": ["n", "total"],
                    },
                ],
            },
        ],
        "marks": [
            {
                "type": "rect",
                "from": {"data": "big"},
                "encode": {
                    "update": {
                        "x": {"field": "category"},
                        "y": {"field": "n"},
                    }
                },
            }
        ],
    }
