"""The Census occupation-history demo scenario (paper §3).

A stacked area chart of occupation frequencies 1850-2000, filtered by a
sex radio button and a regex job-search box.  Demonstrates that the regex
search translates to server-side REGEXP, and that client-side cuts make
radio interactions pure partial executions.

Run with::

    python examples/census_occupations.py
"""

from repro import VegaPlus
from repro.datagen import generate_census
from repro.spec import census_stacked_area_spec


def show_stack(rows, year=1900.0, limit=6):
    print("  stacked segments for {:.0f}:".format(year))
    segments = sorted(
        (row for row in rows if row["year"] == year),
        key=lambda row: row["y0"],
    )
    for row in segments[:limit]:
        print("    {:<18} [{:>10.0f} .. {:>10.0f})".format(
            row["job"], row["y0"], row["y1"]
        ))
    if len(segments) > limit:
        print("    ... {} more".format(len(segments) - limit))


def main():
    census = generate_census(replicate=50)  # ~24k base rows
    session = VegaPlus(
        census_stacked_area_spec(),
        data={"census": census},
        latency_ms=20,
    )

    print("== startup ==")
    result = session.startup()
    print(result.summary())
    print(session.plan.describe())
    show_stack(session.results("stacked"))

    print("\n== radio: female only ==")
    interaction = session.interact("sexFilter", "female")
    print(interaction.summary())
    show_stack(session.results("stacked"))

    print("\n== search box: jobs matching '^Farm' ==")
    interaction = session.interact("searchPattern", "^Farm")
    print(interaction.summary())
    jobs = sorted({row["job"] for row in session.results("stacked")})
    print("  matched jobs:", ", ".join(jobs))
    print("  (the regex ran as a server-side REGEXP — see the last query)")
    server_queries = [entry for entry in interaction.queries
                      if not entry.cached]
    if server_queries:
        print("  SQL:", server_queries[-1].sql[:160], "…")

    print("\n== reset ==")
    session.interact("searchPattern", "")
    session.interact("sexFilter", "all")
    print("back to {} stacked rows".format(len(session.results("stacked"))))


if __name__ == "__main__":
    main()
