"""Vega aggregate operations, shared by aggregate/joinaggregate/window/pivot.

Implements the measure functions from vega-statistics with Vega's naming
(count, valid, missing, distinct, sum, mean, average, variance, variancep,
stdev, stdevp, median, q1, q3, min, max, argmin, argmax).
"""

import math

from repro.dataflow.transforms.base import TransformError


def _numbers(values):
    """Valid numeric values (drop None/NaN, coerce numerics)."""
    out = []
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            out.append(1.0 if value else 0.0)
            continue
        if isinstance(value, (int, float)):
            if isinstance(value, float) and math.isnan(value):
                continue
            out.append(float(value))
    return out


def _valid(values):
    return [
        value
        for value in values
        if value is not None
        and not (isinstance(value, float) and math.isnan(value))
    ]


def _quantile(values, fraction):
    """Linear-interpolation quantile (matches d3/vega and numpy default)."""
    numbers = sorted(_numbers(values))
    if not numbers:
        return None
    if len(numbers) == 1:
        return numbers[0]
    position = (len(numbers) - 1) * fraction
    lower = int(math.floor(position))
    upper = min(lower + 1, len(numbers) - 1)
    weight = position - lower
    return numbers[lower] * (1 - weight) + numbers[upper] * weight


def _variance(values, ddof):
    numbers = _numbers(values)
    if len(numbers) <= ddof:
        return None
    mean = sum(numbers) / len(numbers)
    total = sum((value - mean) ** 2 for value in numbers)
    return total / (len(numbers) - ddof)


def op_count(values):
    return float(len(values))


def op_valid(values):
    return float(len(_valid(values)))


def op_missing(values):
    return float(len(values) - len(_valid(values)))


def op_distinct(values):
    return float(len(set(_valid(values))))


def op_sum(values):
    numbers = _numbers(values)
    return float(sum(numbers)) if numbers else 0.0


def op_mean(values):
    numbers = _numbers(values)
    if not numbers:
        return None
    return sum(numbers) / len(numbers)


def op_variance(values):
    return _variance(values, ddof=1)


def op_variancep(values):
    return _variance(values, ddof=0)


def op_stdev(values):
    variance = _variance(values, ddof=1)
    return math.sqrt(variance) if variance is not None else None


def op_stdevp(values):
    variance = _variance(values, ddof=0)
    return math.sqrt(variance) if variance is not None else None


def op_median(values):
    return _quantile(values, 0.5)


def op_q1(values):
    return _quantile(values, 0.25)


def op_q3(values):
    return _quantile(values, 0.75)


def op_min(values):
    valid = _valid(values)
    if not valid:
        return None
    return min(valid)


def op_max(values):
    valid = _valid(values)
    if not valid:
        return None
    return max(valid)


AGG_OPS = {
    "count": op_count,
    "valid": op_valid,
    "missing": op_missing,
    "distinct": op_distinct,
    "sum": op_sum,
    "mean": op_mean,
    "average": op_mean,
    "variance": op_variance,
    "variancep": op_variancep,
    "stdev": op_stdev,
    "stdevp": op_stdevp,
    "median": op_median,
    "q1": op_q1,
    "q3": op_q3,
    "min": op_min,
    "max": op_max,
}

# Ops that need no field argument.
FIELDLESS_OPS = {"count"}


def aggregate_op(name):
    fn = AGG_OPS.get(name)
    if fn is None:
        raise TransformError("unknown aggregate op {!r}".format(name))
    return fn


def default_output_name(op, field):
    """Vega's default output name: ``op_field`` (or just op for count)."""
    if field is None or op in FIELDLESS_OPS:
        return op
    return "{}_{}".format(op, field)


def group_key(row, groupby):
    """Grouping key for a row.

    NaN folds into None: as a dict key every NaN float is distinct
    (``nan != nan``), which would put each NaN row in its own group —
    while the engine's data model folds NaN into NULL at load, grouping
    them together on the server.  Folding here keeps client and server
    group sets identical.
    """
    key = []
    for field in groupby:
        value = row.get(field)
        if isinstance(value, float) and math.isnan(value):
            value = None
        key.append(value)
    return tuple(key)


def group_rows(rows, groupby):
    """Group rows preserving first-seen key order; returns (keys, groups)."""
    order = []
    groups = {}
    for row in rows:
        key = group_key(row, groupby)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)
    return order, groups
