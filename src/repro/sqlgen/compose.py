"""Compose per-transform SQL into pipeline queries.

The builder chains translated transforms into one nested query (each step
reading the previous step as a derived table).  The merger/rewriter
(:mod:`repro.sqlgen.merge`, :mod:`repro.sqlgen.rewrite`) then collapse
and optimize the nesting — keeping construction and optimization separate
makes the paper's §2.2(3) ablation (merging/rewriting on vs off) a
one-flag switch.
"""

import itertools

from repro.engine import sqlast
from repro.sqlgen.translate import Translation, translate_transform


class SqlPipelineBuilder:
    """Incrementally build SQL for a chain of transforms over a table.

    The executor drives this step by step because value transforms
    (extent) must *execute* before later steps' parameters (bin's extent)
    can be resolved.
    """

    def __init__(self, table_name, columns):
        self.table_name = table_name
        self.columns = list(columns)
        self._select = None  # None until a step is added
        self._alias_counter = itertools.count()
        self.steps_added = 0

    def _current_source(self):
        if self._select is None:
            return sqlast.TableRef(self.table_name)
        alias = "t{}".format(next(self._alias_counter))
        return sqlast.SubqueryRef(self._select, alias)

    def add_step(self, spec_type, params, signals=None):
        """Translate and append a row transform; updates the schema."""
        translation = translate_transform(
            spec_type, params, self._current_source(), self.columns, signals
        )
        if translation.is_value:
            raise ValueError(
                "value transforms go through value_query(), not add_step()"
            )
        self._select = translation.select
        self.columns = translation.columns
        self.steps_added += 1
        return translation

    def value_query(self, spec_type, params, signals=None):
        """Translate a value transform (extent) over the *current* rows
        without advancing the pipeline."""
        translation = translate_transform(
            spec_type, params, self._current_source(), self.columns, signals
        )
        if not translation.is_value:
            raise ValueError("{} is not a value transform".format(spec_type))
        return translation

    def query(self, project_fields=None):
        """The composed query for everything added so far.

        ``project_fields`` optionally restricts the final output columns
        (mark-driven projection pruning of the transfer).
        """
        if self._select is None:
            items = tuple(
                sqlast.SelectItem(sqlast.ColumnRef(name), alias=name)
                for name in (project_fields or self.columns)
            )
            if not items:
                # A zero-column base table (empty dataset) still needs a
                # valid projection; it has zero rows, so a constant
                # placeholder yields the same (empty) result everywhere.
                items = (
                    sqlast.SelectItem(
                        sqlast.Literal(None), alias="__empty"
                    ),
                )
            return sqlast.Select(
                items=items, from_=sqlast.TableRef(self.table_name)
            )
        if project_fields:
            keep = [
                name for name in self.columns if name in set(project_fields)
            ]
            if keep and len(keep) < len(self.columns):
                alias = "t{}".format(next(self._alias_counter))
                items = tuple(
                    sqlast.SelectItem(sqlast.ColumnRef(name), alias=name)
                    for name in keep
                )
                return sqlast.Select(
                    items=items,
                    from_=sqlast.SubqueryRef(self._select, alias),
                )
        return self._select

    @property
    def has_steps(self):
        return self._select is not None


def compose_pipeline(table_name, columns, steps, signals=None):
    """Compose a full pipeline of (spec_type, params) row steps into one
    nested Select.  Value transforms are not allowed here (use the builder
    for incremental execution); convenience for tests and the merger."""
    builder = SqlPipelineBuilder(table_name, columns)
    for spec_type, params in steps:
        builder.add_step(spec_type, params, signals)
    return builder.query()
