"""Benchmark regression gate: compare fresh BENCH_*.json records against
committed baselines.

The bench suite writes machine-readable ``BENCH_<name>.json`` records
(see ``benchmarks/conftest.py``); the first recorded run of each lives
under ``benchmarks/baselines/``.  This tool compares per-metric with two
kinds of tolerance:

* **floor** — an absolute, scale-independent minimum (the CI tripwires:
  parallel speedup >= 1.5, columnar >= 2.0, tiles >= 5.0).  Always
  checked, because ratio metrics normalize out machine speed.
* **ratio** — current must stay within a fraction of the baseline value.
  Only checked when the two records ran at the same ``REPRO_BENCH_SCALE``
  (a 0.2-scale CI run against a 1.0-scale baseline would false-alarm:
  e.g. the tile speedup shrinks with the requery being beaten).

Raw wall-clock timings are deliberately not gated — they track the host,
not the code.  Exit status 1 on any regression::

    python -m repro.metrics.regress --baseline-dir benchmarks/baselines
"""

import argparse
import fnmatch
import glob
import json
import os
import sys
from dataclasses import dataclass


@dataclass
class Rule:
    """One gated metric pattern (dotted-path fnmatch into ``results``)."""

    pattern: str
    #: "higher" = regressions are drops; "lower" = regressions are rises
    direction: str = "higher"
    #: current must stay >= baseline * ratio (higher) or <= baseline /
    #: ratio (lower); None disables the baseline-relative check
    ratio: float = 0.5
    #: absolute scale-independent bound; None disables
    floor: float = None


#: per-benchmark gates; unknown benchmarks get envelope checks only
DEFAULT_RULES = {
    "parallel": [
        Rule("queries.*.speedup_vs_serial.*", "higher",
             ratio=0.5, floor=1.5),
    ],
    "columnar": [
        Rule("speedup", "higher", ratio=0.5, floor=2.0),
    ],
    "tiles": [
        Rule("median_speedup", "higher", ratio=0.5, floor=5.0),
    ],
    "interaction": [
        Rule("*.prefetch_on.cache_hit_rate", "higher",
             ratio=0.7, floor=0.5),
    ],
    "serving": [
        # Zero dropped requests: everything issued is served or
        # explicitly rejected, on both sides of the wire.
        Rule("totals.unaccounted", "lower", ratio=None, floor=0),
        Rule("totals.errors", "lower", ratio=None, floor=0),
        Rule("checks.server_unaccounted", "lower", ratio=None, floor=0),
        # The constrained tenant must actually hit admission control.
        Rule("checks.bronze_rejections", "higher", ratio=None, floor=1),
        Rule("totals.throughput_rps", "higher", ratio=0.5, floor=5.0),
    ],
    "scaling": [
        # The out-of-core tentpole: no layer may silently flatten a
        # chunked/memmap column during the query phase, and at the
        # largest swept scale net peak RSS stays under half the on-disk
        # dataset size.  The bench only records an enforceable fraction
        # when its largest scale is big enough for the criterion to be
        # physical (see bench_e14_scaling.py), and CI runs it at such a
        # scale — so the floor is safe to check scale-independently.
        # Only the scale-independent gate.* paths are ruled: per-scale
        # paths (scales.<rows>.*) change names with REPRO_BENCH_SCALE,
        # so a reduced-scale CI record would trip the presence check.
        Rule("gate.max_query_consolidations", "lower", ratio=None,
             floor=0),
        Rule("gate.net_rss_over_disk", "lower", ratio=None, floor=0.5),
    ],
}

ENVELOPE_KEYS = ("benchmark", "results", "scale", "timestamp")


@dataclass
class Finding:
    benchmark: str
    path: str
    current: object
    baseline: object
    check: str
    ok: bool
    detail: str = ""


def flatten(value, prefix=""):
    """Numeric leaves of a nested dict as {dotted path: number}."""
    out = {}
    if isinstance(value, dict):
        for key, item in value.items():
            dotted = "{}.{}".format(prefix, key) if prefix else str(key)
            out.update(flatten(item, dotted))
    elif isinstance(value, bool):
        pass
    elif isinstance(value, (int, float)):
        out[prefix] = value
    return out


def compare_records(name, baseline, current, rules=None):
    """All findings for one benchmark record pair (ok and regressed)."""
    rules = DEFAULT_RULES.get(name, []) if rules is None else rules
    findings = []
    for key in ENVELOPE_KEYS:
        if key not in current:
            findings.append(Finding(
                name, key, None, None, "envelope", False,
                "missing envelope key"))
    base_flat = flatten(baseline.get("results", {}))
    curr_flat = flatten(current.get("results", {}))
    same_scale = baseline.get("scale") == current.get("scale")

    for rule in rules:
        matched = sorted(
            path for path in base_flat if fnmatch.fnmatch(path, rule.pattern)
        )
        for path in matched:
            base_value = base_flat[path]
            if path not in curr_flat:
                findings.append(Finding(
                    name, path, None, base_value, "presence", False,
                    "metric missing from current record"))
                continue
            value = curr_flat[path]
            if rule.floor is not None:
                ok = (value >= rule.floor if rule.direction == "higher"
                      else value <= rule.floor)
                findings.append(Finding(
                    name, path, value, base_value, "floor", ok,
                    "{} {} floor {}".format(
                        "above" if ok else "BELOW",
                        rule.direction, rule.floor)))
            if rule.ratio is not None and same_scale and base_value:
                if rule.direction == "higher":
                    bound = base_value * rule.ratio
                    ok = value >= bound
                else:
                    bound = base_value / rule.ratio
                    ok = value <= bound
                findings.append(Finding(
                    name, path, value, base_value, "ratio", ok,
                    "bound {:.4g} (baseline {:.4g} x tol {})".format(
                        bound, base_value, rule.ratio)))
    if not same_scale:
        findings.append(Finding(
            name, "scale", current.get("scale"), baseline.get("scale"),
            "scale", True,
            "scales differ; baseline-relative checks skipped"))
    return findings


def _load(path):
    with open(path) as handle:
        return json.load(handle)


def run(baseline_dir, current_dir, names=None, strict_missing=False,
        out=None):
    """Compare every baseline against its current record; returns the
    exit status (0 clean, 1 regression)."""
    out = out or sys.stdout
    baselines = sorted(glob.glob(os.path.join(baseline_dir, "BENCH_*.json")))
    if names:
        wanted = {"BENCH_{}.json".format(name) for name in names}
        baselines = [p for p in baselines if os.path.basename(p) in wanted]
    if not baselines:
        print("no baselines found under {}".format(baseline_dir), file=out)
        return 1

    status = 0
    for baseline_path in baselines:
        file_name = os.path.basename(baseline_path)
        name = file_name[len("BENCH_"):-len(".json")]
        current_path = os.path.join(current_dir, file_name)
        if not os.path.exists(current_path):
            message = "{}: no current record at {} (skipped)".format(
                name, current_path)
            print(message, file=out)
            if strict_missing:
                status = 1
            continue
        findings = compare_records(name, _load(baseline_path),
                                   _load(current_path))
        regressions = [f for f in findings if not f.ok]
        for finding in findings:
            marker = "ok  " if finding.ok else "FAIL"
            print("{} {:<12} {:<52} current={} baseline={} [{}] {}".format(
                marker, finding.benchmark, finding.path,
                _fmt(finding.current), _fmt(finding.baseline),
                finding.check, finding.detail), file=out)
        if regressions:
            status = 1
    print("regress: {}".format("REGRESSION" if status else "clean"),
          file=out)
    return status


def _fmt(value):
    if isinstance(value, float):
        return "{:.4g}".format(value)
    return str(value)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro.metrics.regress",
        description="Gate fresh BENCH_*.json records against baselines.",
    )
    parser.add_argument(
        "names", nargs="*",
        help="benchmark names to check (default: every baseline present)",
    )
    parser.add_argument("--baseline-dir", default="benchmarks/baselines")
    parser.add_argument("--current-dir", default=".")
    parser.add_argument(
        "--strict-missing", action="store_true",
        help="fail when a baseline has no current record to compare",
    )
    args = parser.parse_args(argv)
    return run(args.baseline_dir, args.current_dir, names=args.names,
               strict_missing=args.strict_missing)


if __name__ == "__main__":
    sys.exit(main())
