"""Client-side result cache for server query responses.

Keys are the rendered SQL text — a canonical description of the request
including all inlined signal values, so re-parameterized interaction
variants get distinct entries.  Eviction is LRU by entry count with an
optional byte budget (browser memory is the real constraint the paper's
middleware coordinates, §2: "prefetches data ... and coordinates the
cache").

The cache is safe to share across concurrent sessions: one re-entrant
lock guards the entry map, the byte ledger, and every counter, so a
process-wide cache under the serving layer (``repro.serve``) keeps
exact hit/miss/eviction/byte accounting no matter how many worker
threads race on it.  Entry payloads are immutable once inserted, so
readers outside the lock only ever see complete entries.
"""

import threading
from collections import OrderedDict

from repro.metrics import NULL
from repro.telemetry.tracer import NOOP


class CacheEntry:
    """One cached query response.

    The canonical payload is the columnar ``batch`` exactly as it came
    off the wire; ``rows`` is a lazily materialized (and then cached)
    dict-row view for row-oriented consumers.  Entries can still be
    constructed from a row list directly (tests, synthetic entries)."""

    __slots__ = ("batch", "wire_bytes", "value", "_rows")

    def __init__(self, rows=None, wire_bytes=0, value=None, batch=None):
        self.batch = batch
        self.wire_bytes = wire_bytes
        #: for value queries (extent results)
        self.value = value
        self._rows = None if rows is None else list(rows)
        if self._rows is None and batch is None:
            self._rows = []

    @property
    def rows(self):
        if self._rows is None:
            self._rows = self.batch.to_rows()
        return self._rows

    @property
    def num_rows(self):
        if self.batch is not None:
            return self.batch.num_rows
        return len(self._rows)

    def as_batch(self):
        """The entry's batch, building (and caching) one from the row
        view for entries that were constructed from rows."""
        if self.batch is None:
            from repro.data import ColumnBatch

            self.batch = ColumnBatch.from_rows(self._rows)
        return self.batch


class ResultCache:
    """LRU cache of query results, safe for concurrent sessions."""

    def __init__(self, max_entries=64, max_bytes=64 * 1024 * 1024):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        # Re-entrant: put() evicts while already holding the lock.
        self._lock = threading.RLock()
        self._entries = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: bytes evicted over the cache's lifetime
        self.evicted_bytes = 0
        #: telemetry sink; the session installs its tracer here
        self.tracer = NOOP
        #: always-on plane; the session installs its labeled MetricsView
        self.metrics = NULL

    def __len__(self):
        with self._lock:
            return len(self._entries)

    @property
    def total_bytes(self):
        with self._lock:
            return self._bytes

    def get(self, key):
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                self.tracer.count("cache.misses")
                self.metrics.inc("cache.misses")
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            self.tracer.count("cache.hits")
            self.metrics.inc("cache.hits")
            return entry

    def contains(self, key):
        """Peek without affecting counters or recency."""
        with self._lock:
            return key in self._entries

    def peek(self, key):
        """The entry for ``key`` (refreshing its recency) without touching
        the hit/miss counters — used by owners of synthetic entries (tile
        cubes) that treat the cache purely as the eviction authority."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def discard(self, key):
        """Drop one entry (owner-initiated invalidation, not eviction)."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return
            self._bytes -= entry.wire_bytes
            self.tracer.count("cache.bytes", delta=-entry.wire_bytes)
            self.metrics.set_gauge("cache.bytes", self._bytes)

    def put(self, key, entry):
        with self._lock:
            if key in self._entries:
                self._bytes -= self._entries[key].wire_bytes
                self.tracer.count("cache.bytes",
                                  delta=-self._entries[key].wire_bytes)
                del self._entries[key]
            self._entries[key] = entry
            self._bytes += entry.wire_bytes
            # ``cache.bytes`` tracks the resident byte size as a net
            # counter: every put adds, every eviction/clear subtracts.  On
            # the metrics plane the same quantity is a gauge set to the
            # resident size.
            self.tracer.count("cache.bytes", delta=entry.wire_bytes)
            self._evict()
            self.metrics.set_gauge("cache.bytes", self._bytes)

    def _evict(self):
        # Callers hold the lock (RLock re-entry from put()).
        while len(self._entries) > self.max_entries or (
            self._bytes > self.max_bytes and len(self._entries) > 1
        ):
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.wire_bytes
            self.evictions += 1
            self.evicted_bytes += evicted.wire_bytes
            self.tracer.count("cache.evictions")
            self.tracer.count("cache.bytes", delta=-evicted.wire_bytes)
            self.metrics.inc("cache.evictions")

    def clear(self):
        with self._lock:
            if self._bytes:
                self.tracer.count("cache.bytes", delta=-self._bytes)
            self._entries.clear()
            self._bytes = 0
            self.metrics.set_gauge("cache.bytes", 0)

    def stats(self):
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "evicted_bytes": self.evicted_bytes,
            }
