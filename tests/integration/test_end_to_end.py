"""End-to-end integration tests across the full middleware stack."""

import pytest

from repro.core import VegaPlus
from repro.datagen import generate_census, generate_events, generate_flights
from repro.interact import option_cycle, replay, slider_drag
from repro.perf import compare_plans
from repro.spec import (
    census_stacked_area_spec,
    flights_histogram_spec,
    simple_filter_spec,
)


class TestFlightsScenario:
    """The paper's first demo scenario (Figure 2), end to end."""

    @pytest.fixture(scope="class")
    def session(self):
        instance = VegaPlus(
            flights_histogram_spec(),
            data={"flights": generate_flights(30000)},
            latency_ms=20,
        )
        instance.startup()
        return instance

    def test_histogram_shape(self, session):
        rows = [row for row in session.results("binned")
                if row["bin0"] is not None]
        # Departure delays are right-skewed: the modal bin is near zero and
        # counts decay into the late tail.
        modal = max(rows, key=lambda row: row["count"])
        assert modal["bin0"] <= 20
        tail = [row for row in rows if row["bin0"] >= 100]
        assert all(row["count"] < modal["count"] for row in tail)

    def test_all_plans_agree_on_data(self, session):
        plans = [
            session.baseline_plan(),
            session.plan,
            session.custom_plan({"binned": 1}, label="user"),
            session.custom_plan({"binned": 2}, label="user2"),
        ]
        outputs = []
        for plan in plans:
            session.cache.clear()
            result = session.run_with_plan(plan)
            outputs.append(sorted(
                ((row["bin0"] is None, row["bin0"]), row["count"])
                for row in result.datasets["binned"]
            ))
        assert all(output == outputs[0] for output in outputs[1:])

    def test_slider_session(self, session):
        report = replay(
            session, slider_drag("maxbins", 10, 60, step=10), prefetch=True
        )
        assert report.interactions == 6
        assert session.results("binned")

    def test_dropdown_session(self, session):
        report = replay(
            session,
            option_cycle("binField",
                         ["distance", "air_time", "dep_delay"]),
            prefetch=False,
        )
        assert report.interactions == 3
        # Ends back on dep_delay; histogram domain must look like delays.
        rows = [row for row in session.results("binned")
                if row["bin0"] is not None]
        assert min(row["bin0"] for row in rows) < 0


class TestCensusScenario:
    """The paper's second demo scenario (stacked occupation areas)."""

    @pytest.fixture(scope="class")
    def session(self):
        instance = VegaPlus(
            census_stacked_area_spec(),
            data={"census": generate_census(replicate=5)},
            latency_ms=20,
        )
        instance.startup()
        return instance

    def test_stack_tiles(self, session):
        rows = session.results("stacked")
        years = {row["year"] for row in rows}
        for year in years:
            segments = sorted(
                (row["y0"], row["y1"]) for row in rows if row["year"] == year
            )
            assert segments[0][0] == 0.0
            for (a0, a1), (b0, b1) in zip(segments, segments[1:]):
                assert abs(a1 - b0) < 1e-6

    def test_sex_radio_filter(self, session):
        before = sum(row["y1"] - row["y0"]
                     for row in session.results("stacked"))
        session.interact("sexFilter", "female")
        after = sum(row["y1"] - row["y0"]
                    for row in session.results("stacked"))
        assert after < before
        session.interact("sexFilter", "all")

    def test_regex_search_box(self, session):
        session.interact("searchPattern", "^Farm")
        jobs = {row["job"] for row in session.results("stacked")}
        assert jobs == {"Farmer", "Farm Laborer"}
        session.interact("searchPattern", "")
        jobs = {row["job"] for row in session.results("stacked")}
        assert len(jobs) > 10

    def test_regex_interaction_stays_consistent_with_client(self, session):
        session.interact("searchPattern", "er$")
        server_jobs = {row["job"] for row in session.results("stacked")}
        # Recompute client-side from raw data.
        expected = {
            row["job"] for row in session._rows("census")
            if row["job"].endswith("er")
        }
        assert server_jobs == expected
        session.interact("searchPattern", "")


class TestBackendParity:
    """Both backends must drive the whole stack to identical results."""

    @pytest.mark.parametrize("backend", ["embedded", "sqlite"])
    def test_full_stack_per_backend(self, backend):
        session = VegaPlus(
            flights_histogram_spec(),
            data={"flights": generate_flights(5000)},
            backend=backend,
        )
        result = session.startup()
        total = sum(row["count"] for row in result.datasets["binned"])
        assert total == 5000

    def test_backends_agree(self):
        def run(backend):
            session = VegaPlus(
                flights_histogram_spec(),
                data={"flights": generate_flights(5000)},
                backend=backend,
            )
            rows = session.startup().datasets["binned"]
            return sorted(
                ((row["bin0"] is None, row["bin0"]), row["count"])
                for row in rows
            )

        assert run("embedded") == run("sqlite")


class TestQuickstartSpec:
    def test_events_pipeline(self):
        session = VegaPlus(
            simple_filter_spec(threshold=30),
            data={"events": generate_events(2000)},
        )
        result = session.startup()
        rows = result.datasets["big"]
        assert rows
        assert all(row["n"] >= 1 for row in rows)
        session.interact("threshold", 60)
        assert sum(row["n"] for row in session.results("big")) < \
            sum(row["n"] for row in rows)


class TestMergeAblationConsistency:
    def test_unmerged_session_matches_merged(self):
        table = generate_flights(3000)

        def run(merge):
            session = VegaPlus(
                flights_histogram_spec(),
                data={"flights": table},
                merge_queries=merge,
            )
            rows = session.startup().datasets["binned"]
            return sorted(
                ((row["bin0"] is None, row["bin0"]), row["count"])
                for row in rows
            )

        assert run(True) == run(False)

    def test_no_rewrite_session_matches(self):
        table = generate_flights(3000)

        def run(rewrite):
            session = VegaPlus(
                flights_histogram_spec(),
                data={"flights": table},
                rewrite_sql=rewrite,
            )
            rows = session.startup().datasets["binned"]
            return sorted(
                ((row["bin0"] is None, row["bin0"]), row["count"])
                for row in rows
            )

        assert run(True) == run(False)
