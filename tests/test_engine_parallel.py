"""Parallel-equals-serial property tests for the morsel-driven executor.

The morsel executor (`repro.engine.parallel`) promises canonically
*identical* output to the serial executor — same rows in the same order,
with float SUM/AVG tolerated to summation-order precision.  These tests
exercise that promise on the adversarial inputs where per-morsel
decomposition is most likely to break:

* NULL and NaN group keys (NaN folds to NULL at load; both must land in
  the same group on every path);
* empty tables, single rows, and morsel-boundary sizes M-1, M, M+1 and
  2M+1 (a tiny ``morsel_rows`` makes every size class reachable);
* every decomposable aggregate, the non-decomposable serial fallbacks,
  sort, the per-morsel top-N merge, and joins.
"""

import math

import numpy as np
import pytest

from repro.engine import Database, Table

MORSEL = 5
WORKERS = 4

#: the morsel-boundary size classes: empty, single row, one-under/at/over
#: a morsel boundary, and a final partial morsel after two full ones.
SIZES = [0, 1, MORSEL - 1, MORSEL, MORSEL + 1, 2 * MORSEL + 1]

QUERIES = [
    'SELECT "k", COUNT(*) AS n, COUNT("v") AS nv, SUM("v") AS s, '
    'AVG("v") AS a, MIN("v") AS lo, MAX("v") AS hi FROM "t" GROUP BY "k"',
    'SELECT "k", MEDIAN("v") AS med, STDDEV("v") AS sd, '
    'COUNT(DISTINCT "v") AS dv FROM "t" GROUP BY "k"',
    'SELECT COUNT(*) AS n, SUM("v") AS s, MIN("s") AS lo FROM "t"',
    'SELECT "k", "v" FROM "t" WHERE "v" > 0.0',
    'SELECT "v" + 1.0 AS shifted, "s" FROM "t"',
    'SELECT * FROM "t" ORDER BY "v", "s"',
    'SELECT * FROM "t" ORDER BY "v" DESC LIMIT 3',
    'SELECT "s", "v" FROM "t" ORDER BY "s" LIMIT 4',
    'SELECT "k", MIN("s") AS lo_s FROM "t" GROUP BY "k"',
    'SELECT DISTINCT "k" FROM "t"',
]


def build_table(num_rows, seed=0):
    """An adversarial table: NULL/NaN keys, NULL values, tied strings."""
    rng = np.random.default_rng(seed)
    keys = []
    values = []
    strings = []
    for index in range(num_rows):
        roll = rng.integers(0, 6)
        if roll == 0:
            keys.append(None)
        elif roll == 1:
            keys.append(float("nan"))  # folds to NULL at load
        else:
            keys.append(float(rng.integers(0, 3)))
        values.append(None if rng.integers(0, 4) == 0
                      else float(rng.normal()))
        strings.append("s%d" % rng.integers(0, 3))
    return Table.from_columns(k=keys, v=values, s=strings)


def databases_for(table, extra=None):
    serial = Database()
    parallel = Database(parallelism=WORKERS, morsel_rows=MORSEL)
    for db in (serial, parallel):
        db.load_table("t", table)
        if extra:
            for name, other in extra.items():
                db.load_table(name, other)
    return serial, parallel


def assert_tables_match(serial, parallel, context=""):
    """Ordered, cell-wise equality with float summation tolerance.

    The parallel executor preserves serial row order (ordered morsel
    concatenation; the shared global factorization; canonical top-N), so
    this is strict positional equality — not set equality.
    """
    assert parallel.column_names == serial.column_names, context
    serial_rows = serial.to_rows()
    parallel_rows = parallel.to_rows()
    assert len(parallel_rows) == len(serial_rows), context
    for position, (expect, got) in enumerate(
            zip(serial_rows, parallel_rows)):
        for column, expect_value in expect.items():
            got_value = got[column]
            where = "{} row {} column {}".format(context, position, column)
            if isinstance(expect_value, float) and not isinstance(
                    expect_value, bool):
                assert isinstance(got_value, float), where
                assert math.isclose(got_value, expect_value,
                                    rel_tol=1e-9, abs_tol=1e-12), where
            else:
                assert got_value == expect_value, where


@pytest.mark.parametrize("num_rows", SIZES)
@pytest.mark.parametrize("sql", QUERIES)
def test_parallel_matches_serial(num_rows, sql):
    serial_db, parallel_db = databases_for(build_table(num_rows))
    assert_tables_match(
        serial_db.execute(sql), parallel_db.execute(sql),
        context="rows={} sql={}".format(num_rows, sql),
    )


@pytest.mark.parametrize("num_rows", SIZES)
def test_parallel_join_matches_serial(num_rows):
    dims = Table.from_columns(
        k=[0.0, 1.0, 2.0, None],
        label=["zero", "one", "two", "null-key"],
    )
    sql = ('SELECT "t"."k", "t"."v", "d"."label" FROM "t" '
           'JOIN "d" ON "t"."k" = "d"."k"')
    serial_db, parallel_db = databases_for(
        build_table(num_rows), extra={"d": dims})
    assert_tables_match(
        serial_db.execute(sql), parallel_db.execute(sql),
        context="join rows={}".format(num_rows),
    )


def test_topn_ties_break_canonically():
    """Tied sort keys across morsel boundaries: both executors must pick
    the same winners (first occurrences by row index, the stable-sort
    prefix), not merely *a* valid top-N."""
    num_rows = 4 * MORSEL + 3
    table = Table.from_columns(
        v=[float(i % 3) for i in range(num_rows)],
        tag=["row%03d" % i for i in range(num_rows)],
    )
    serial_db, parallel_db = databases_for(table)
    for sql in (
        'SELECT * FROM "t" ORDER BY "v" LIMIT 4',
        'SELECT * FROM "t" ORDER BY "v" DESC LIMIT 4',
    ):
        assert_tables_match(serial_db.execute(sql),
                            parallel_db.execute(sql), context=sql)


def test_topn_with_null_keys_across_morsels():
    num_rows = 3 * MORSEL + 2
    values = [None if i % 4 == 0 else float(-i) for i in range(num_rows)]
    table = Table.from_columns(v=values)
    serial_db, parallel_db = databases_for(table)
    for sql in (
        'SELECT "v" FROM "t" ORDER BY "v" LIMIT 5',
        'SELECT "v" FROM "t" ORDER BY "v" DESC LIMIT 5',
    ):
        assert_tables_match(serial_db.execute(sql),
                            parallel_db.execute(sql), context=sql)


def test_varchar_min_max_across_morsels():
    """Object-dtype MIN/MAX takes the python reducer path in the morsel
    partials; verify the merge agrees with the serial kernel."""
    num_rows = 3 * MORSEL + 1
    table = Table.from_columns(
        k=[float(i % 2) for i in range(num_rows)],
        s=[None if i % 7 == 0 else "val%02d" % ((i * 13) % 20)
           for i in range(num_rows)],
    )
    serial_db, parallel_db = databases_for(table)
    sql = ('SELECT "k", MIN("s") AS lo, MAX("s") AS hi, COUNT("s") AS n '
           'FROM "t" GROUP BY "k"')
    assert_tables_match(serial_db.execute(sql), parallel_db.execute(sql),
                        context=sql)


def test_all_null_groups_merge_to_null():
    """A group whose every value is NULL must yield NULL (not 0) from the
    partial-merge path, exactly like serial."""
    table = Table.from_columns(
        k=[0.0] * (MORSEL + 2) + [1.0] * (MORSEL + 2),
        v=[None] * (MORSEL + 2)
          + [float(i) for i in range(MORSEL + 2)],
    )
    serial_db, parallel_db = databases_for(table)
    sql = ('SELECT "k", SUM("v") AS s, AVG("v") AS a, MIN("v") AS lo, '
           'MAX("v") AS hi, COUNT("v") AS n FROM "t" GROUP BY "k"')
    serial_out = serial_db.execute(sql)
    assert_tables_match(serial_out, parallel_db.execute(sql), context=sql)
    null_group = [row for row in serial_out.to_rows() if row["k"] == 0.0]
    assert null_group[0]["s"] is None
    assert null_group[0]["n"] == 0.0


def test_morsel_log_attributes_work():
    """``explain_analyze_data`` exposes per-morsel records on split nodes:
    ordered indices, full row coverage, and real worker attribution."""
    num_rows = 6 * MORSEL + 1
    parallel_db = Database(parallelism=2, morsel_rows=MORSEL)
    parallel_db.load_table("t", build_table(num_rows))
    _, nodes = parallel_db.explain_analyze_data(
        'SELECT "k", COUNT(*) AS n FROM "t" WHERE "v" IS NOT NULL '
        'GROUP BY "k"')
    logged = [node for node in nodes if node.get("morsels")]
    assert logged, "no node recorded morsels"
    for node in logged:
        records = node["morsels"]
        assert [record["index"] for record in records] == list(
            range(len(records)))
        assert sum(record["rows_in"] for record in records) > 0
        for record in records:
            assert record["op"] in {"scan", "filter", "project",
                                    "aggregate", "sort"}
            assert 0 <= record["worker"] < 2
            assert record["seconds"] >= 0.0


def test_serial_database_records_no_morsels():
    serial_db = Database()
    serial_db.load_table("t", build_table(MORSEL + 1))
    _, nodes = serial_db.explain_analyze_data('SELECT COUNT(*) AS n FROM "t"')
    assert not any(node.get("morsels") for node in nodes)


def test_explicit_knobs_beat_environment(monkeypatch):
    monkeypatch.setenv("REPRO_THREADS", "8")
    monkeypatch.setenv("REPRO_MORSEL_ROWS", "1000")
    db = Database(parallelism=2, morsel_rows=7)
    assert db.parallelism == 2
    assert db.morsel_rows == 7


def test_environment_knobs_apply(monkeypatch):
    monkeypatch.setenv("REPRO_THREADS", "3")
    monkeypatch.setenv("REPRO_MORSEL_ROWS", "11")
    db = Database()
    assert db.parallelism == 3
    assert db.morsel_rows == 11


def test_invalid_parallelism_rejected():
    with pytest.raises(ValueError):
        Database(parallelism=0)
    with pytest.raises(ValueError):
        Database(morsel_rows=0)
