"""Validate an exported Chrome trace file from the command line.

Used by CI after a traced end-to-end session::

    python -m repro.telemetry.validate trace.json --expect-span compile

Exit status 0 when the file parses, spans nest correctly, and every
``--expect-span`` name (exact or prefix with a trailing ``*``) occurs.
"""

import argparse
import json
import sys

from repro.telemetry.export import validate_chrome_trace


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro.telemetry.validate",
        description="Validate a Chrome trace_event export.",
    )
    parser.add_argument("path", help="trace JSON file")
    parser.add_argument(
        "--expect-span", action="append", default=[],
        help="require a span name (suffix '*' matches a prefix); repeatable",
    )
    args = parser.parse_args(argv)

    with open(args.path) as handle:
        document = json.load(handle)
    problems = validate_chrome_trace(document)
    names = [
        event.get("name", "")
        for event in document.get("traceEvents", [])
        if event.get("ph") == "X"
    ]
    for expected in args.expect_span:
        if expected.endswith("*"):
            hit = any(name.startswith(expected[:-1]) for name in names)
        else:
            hit = expected in names
        if not hit:
            problems.append("expected span {!r} not found".format(expected))
    if problems:
        for problem in problems:
            print("INVALID: " + problem, file=sys.stderr)
        return 1
    print(
        "trace OK: {} events, {} distinct span names".format(
            len(document.get("traceEvents", [])), len(set(names))
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
