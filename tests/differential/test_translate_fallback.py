"""Every transform type, under every edge-case parameterization, must
either produce a :class:`Translation` or raise :class:`Untranslatable` —
never crash with an arbitrary exception.  An uncaught error here would
desynchronize planning (``translatable_prefix`` treats any exception as
"pin to client") from execution (which would crash mid-segment)."""

import pytest

from repro.engine import sqlast
from repro.sqlgen.translate import (
    LookupTable,
    Translation,
    Untranslatable,
    translate_transform,
)

COLUMNS = ["x", "y", "k"]


def attempt(spec_type, params, columns=COLUMNS, signals=None):
    """Translate; returns the Translation or the Untranslatable raised."""
    try:
        result = translate_transform(
            spec_type, params, sqlast.TableRef("t"), list(columns),
            signals or {},
        )
    except Untranslatable as exc:
        return exc
    assert isinstance(result, Translation)
    return result


# (spec_type, params) covering every registered transform plus edge-case
# parameter values: empty/zero-width extents, negative and zero steps,
# unresolved fields, missing type info.
CASES = [
    ("filter", {"expr": "datum.x > 5"}),
    ("filter", {"expr": "datum.missing_col > 5"}),
    ("filter", {}),
    ("formula", {"expr": "datum.x * 2", "as": "x2"}),
    ("formula", {"expr": "now()", "as": "t"}),
    ("formula", {"as": "x2"}),
    ("project", {"fields": ["x"], "as": ["only_x"]}),
    ("project", {"fields": ["not_there"]}),
    ("extent", {"field": "x", "signal": "e"}),
    ("extent", {"field": None}),
    ("bin", {"field": "x", "extent": [0, 100], "maxbins": 10}),
    ("bin", {"field": "x", "extent": [None, None]}),   # empty upstream
    ("bin", {"field": "x", "extent": [5.0, 5.0], "step": 1.0}),
    ("bin", {"field": "x", "extent": [5.0, 5.0], "nice": False}),
    ("bin", {"field": "x", "extent": [0.0, 10.0], "step": -2.0}),
    ("bin", {"field": "x", "extent": [0.0, 10.0], "step": 0.0}),
    ("bin", {"field": "x",
             "extent": [float("nan"), float("nan")]}),
    ("bin", {"field": "x", "extent": [float("-inf"), float("inf")]}),
    ("bin", {"field": None, "extent": [0, 1]}),
    ("bin", {"field": "x"}),                           # unresolved extent
    ("aggregate", {"groupby": ["k"], "ops": ["sum"], "fields": ["x"],
                   "as": ["s"]}),
    ("aggregate", {"groupby": [None], "ops": ["sum"], "fields": ["x"]}),
    ("aggregate", {"ops": ["argmax"], "fields": ["x"], "as": ["a"]}),
    ("collect", {"sort": {"field": ["x"], "order": ["ascending"]}}),
    ("collect", {}),
    ("stack", {"groupby": ["k"], "sort": {"field": "x"}, "field": "y"}),
    ("stack", {"groupby": ["k"], "sort": {"field": "x"}, "field": "y",
               "offset": "normalize"}),
    ("joinaggregate", {"groupby": ["k"], "ops": ["mean"], "fields": ["x"],
                       "as": ["m"]}),
    ("window", {"sort": {"field": ["x"], "order": ["ascending"]},
                "ops": ["rank"], "as": ["r"]}),
    ("window", {"ops": ["rank"]}),                     # no sort order
    ("lookup", {"from_rows": LookupTable("dim", types=(("v", "num"),)),
                "key": "key", "fields": ["k"], "values": ["v"],
                "as": ["l"]}),
    ("lookup", {"from_rows": LookupTable("dim"), "key": "key",
                "fields": ["k"], "values": ["v"], "as": ["l"],
                "default": 0.0}),                      # no type info
    ("lookup", {"from_rows": [{"key": "a"}], "key": "key",
                "fields": ["k"], "values": ["v"]}),    # client-side rows
    ("sample", {"size": 10}),                          # no SQL form
    ("identifier", {"as": "id"}),
    ("nosuchtransform", {}),
]


@pytest.mark.parametrize(
    "spec_type,params", CASES,
    ids=["{}-{}".format(i, spec_type)
         for i, (spec_type, _) in enumerate(CASES)],
)
def test_translation_or_clean_refusal(spec_type, params):
    attempt(spec_type, params)


def test_zero_width_extent_clamp_matches_client():
    """The seed-700050 shape: bin_params widens a zero-width extent, so
    the top-edge clamp must not drop below the bin start."""
    from repro.dataflow.transforms.bin import bin_params

    start, stop, step = bin_params([0.0, 0.0], step=5.0, nice=False)
    assert stop - step < start  # the degenerate shape under test
    result = attempt("bin", {"field": "x", "extent": [0.0, 0.0],
                             "step": 5.0, "nice": False})
    assert isinstance(result, Translation)
    sql = result.select.to_sql()
    assert "LEAST" not in sql
    assert "CASE WHEN" in sql


def test_every_registered_transform_covered():
    from repro.sqlgen.translate import _TRANSLATORS

    covered = {spec_type for spec_type, _ in CASES}
    assert set(_TRANSLATORS) <= covered
