"""Property-based tests for client transforms and client/server parity."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.transforms import create_transform
from repro.dataflow.transforms.bin import bin_index, bin_params
from repro.engine import Database, Table
from repro.sqlgen import compose_pipeline, merge_query

_VALUES = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)


def apply(spec_type, params, rows):
    transform = create_transform(spec_type, "t", params, None)
    return transform.transform(rows, params, {})


class TestBinProperties:
    @given(
        st.floats(min_value=-1e5, max_value=1e5, allow_nan=False),
        st.floats(min_value=1e-3, max_value=1e5, allow_nan=False),
        st.integers(min_value=2, max_value=100),
    )
    @settings(max_examples=200)
    def test_bin_step_respects_maxbins(self, lo, span, maxbins):
        start, stop, step = bin_params([lo, lo + span], maxbins=maxbins)
        assert step > 0
        # Nice rounding may add up to one bin at each end (floor the
        # start, ceil the stop), so the bound is maxbins + 2.
        assert (stop - start) / step <= maxbins + 2 + 1e-6

    @given(
        _VALUES,
        st.floats(min_value=1.0, max_value=1e4, allow_nan=False),
    )
    @settings(max_examples=200)
    def test_values_fall_in_their_bin(self, lo, span):
        start, stop, step = bin_params([lo, lo + span], maxbins=10)
        value = lo + span / 3
        bin0 = bin_index(value, start, step)
        assert bin0 <= value < bin0 + step + 1e-9

    @given(st.lists(_VALUES, min_size=1, max_size=50))
    @settings(max_examples=100)
    def test_bin_rows_cover_all_values(self, values):
        rows = [{"x": value} for value in values]
        extent = [min(values), max(values)]
        out = apply("bin", {"field": "x", "extent": extent, "maxbins": 10},
                    rows)
        for row in out:
            assert row["bin0"] is not None
            assert row["bin0"] - 1e-6 <= row["x"]


class TestStackProperties:
    @given(st.lists(
        st.tuples(st.sampled_from(["g1", "g2"]),
                  st.floats(min_value=0, max_value=100, allow_nan=False)),
        min_size=1, max_size=30,
    ))
    @settings(max_examples=100)
    def test_stack_segments_tile_exactly(self, items):
        rows = [{"g": g, "v": v} for g, v in items]
        out = apply("stack", {"groupby": ["g"], "field": "v"}, rows)
        for group in ("g1", "g2"):
            segments = sorted(
                (row["y0"], row["y1"]) for row in out if row["g"] == group
            )
            total = sum(v for g, v in items if g == group)
            if not segments:
                continue
            assert abs(segments[0][0]) < 1e-9
            assert abs(segments[-1][1] - total) < 1e-6
            for (a0, a1), (b0, b1) in zip(segments, segments[1:]):
                assert abs(a1 - b0) < 1e-6  # no gaps, no overlaps


class TestAggregateParity:
    @given(st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]),
                  st.one_of(st.none(), _VALUES)),
        min_size=1, max_size=40,
    ))
    @settings(max_examples=100, deadline=None)
    def test_client_server_aggregate_parity(self, items):
        """The same aggregate spec gives identical answers on the client
        dataflow and through generated SQL on the engine."""
        rows = [{"k": k, "v": v} for k, v in items]
        params = {
            "groupby": ["k"],
            "ops": ["count", "valid", "sum", "min", "max"],
            "fields": [None, "v", "v", "v", "v"],
            "as": ["n", "valid", "s", "lo", "hi"],
        }
        client = apply("aggregate", params, rows)

        db = Database()
        db.load_table("t", Table.from_rows(rows, column_order=["k", "v"]))
        sql = merge_query(
            compose_pipeline("t", ["k", "v"], [("aggregate", params)])
        ).to_sql()
        server = db.execute(sql).to_rows()

        def canon(result):
            out = []
            for row in sorted(result, key=lambda r: r["k"]):
                out.append((
                    row["k"], row["n"], row["valid"],
                    None if row["s"] is None else round(row["s"], 6),
                    row["lo"], row["hi"],
                ))
            return out

        # Vega's sum over an all-null group is 0.0; our SQL translation
        # wraps SUM in COALESCE(.., 0) to match, so both sides agree.
        assert canon(client) == canon(server)


class TestSampleProperties:
    @given(st.lists(_VALUES, max_size=100), st.integers(1, 50))
    @settings(max_examples=50)
    def test_sample_size_bound(self, values, size):
        rows = [{"x": value} for value in values]
        out = apply("sample", {"size": size, "seed": 1}, rows)
        assert len(out) == min(size, len(rows))

    @given(st.lists(_VALUES, min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_sample_is_subset(self, values):
        rows = [{"x": value} for value in values]
        out = apply("sample", {"size": 10, "seed": 2}, rows)
        for row in out:
            assert row in rows
