"""Backend adapter over Python's stdlib sqlite3.

The generated SQL targets the engine dialect (REGEXP, STRPOS, LEAST,
YEAR(ms)...).  SQLite lacks many of those, so this adapter registers
Python implementations via ``create_function``/``create_aggregate``,
keeping the translator backend-agnostic — the same portability argument
the paper makes by supporting PostgreSQL, OmniSciDB, and DuckDB.
"""

import math
import re
import sqlite3
from datetime import datetime, timezone

import numpy as np

from repro.backends.base import Backend, BackendError
from repro.data import Column, ColumnBatch, SQLType


def _regexp(pattern, value):
    if value is None or pattern is None:
        return None
    return 1 if re.search(pattern, str(value)) else 0


def _strpos(haystack, needle):
    if haystack is None or needle is None:
        return None
    return haystack.find(needle) + 1


def _safe_unary(fn):
    def impl(value):
        if value is None:
            return None
        try:
            result = fn(float(value))
        except (ValueError, OverflowError):
            return None
        if isinstance(result, float) and not math.isfinite(result):
            return None
        return result

    return impl


def _date_part(getter):
    def impl(ms):
        if ms is None:
            return None
        dt = datetime.fromtimestamp(ms / 1000.0, tz=timezone.utc)
        return float(getter(dt))

    return impl


class _Median:
    def __init__(self):
        self.values = []

    def step(self, value):
        if value is not None:
            self.values.append(float(value))

    def finalize(self):
        if not self.values:
            return None
        return float(np.median(self.values))


class _Stddev:
    ddof = 1

    def __init__(self):
        self.values = []

    def step(self, value):
        if value is not None:
            self.values.append(float(value))

    def finalize(self):
        if len(self.values) <= self.ddof:
            return None
        return float(np.std(self.values, ddof=self.ddof))


class _Variance(_Stddev):
    def finalize(self):
        if len(self.values) <= self.ddof:
            return None
        return float(np.var(self.values, ddof=self.ddof))


class _Quantile:
    def __init__(self):
        self.values = []
        self.fraction = 0.5

    def step(self, value, fraction):
        self.fraction = float(fraction)
        if value is not None:
            self.values.append(float(value))

    def finalize(self):
        if not self.values:
            return None
        return float(np.quantile(self.values, self.fraction))


def _quoted_identifiers(sql):
    """Every double-quoted identifier outside single-quoted string
    literals, as ``(name, is_alias_definition)`` pairs — the latter true
    when the identifier directly follows an ``AS`` keyword (a column or
    derived-table alias being *defined* rather than referenced)."""
    found = []
    index, length = 0, len(sql)
    while index < length:
        char = sql[index]
        if char == "'":
            index += 1
            while index < length:
                if sql[index] == "'":
                    if index + 1 < length and sql[index + 1] == "'":
                        index += 2
                        continue
                    index += 1
                    break
                index += 1
            continue
        if char == '"':
            start = index
            index += 1
            parts = []
            while index < length:
                if sql[index] == '"':
                    if index + 1 < length and sql[index + 1] == '"':
                        parts.append('"')
                        index += 2
                        continue
                    index += 1
                    break
                parts.append(sql[index])
                index += 1
            before = sql[:start].rstrip()
            is_alias = (
                before[-2:].upper() == "AS"
                and (len(before) == 2
                     or not (before[-3].isalnum() or before[-3] == "_"))
            )
            found.append(("".join(parts), is_alias))
            continue
        index += 1
    return found


class SQLiteBackend(Backend):
    """SQLite (stdlib) behind the common Backend interface."""

    name = "sqlite"

    def __init__(self, path=":memory:"):
        self.conn = sqlite3.connect(path)
        self.conn.row_factory = sqlite3.Row
        self._register_functions()
        self._schemas = {}

    def _register_functions(self):
        conn = self.conn
        conn.create_function("REGEXP", 2, _regexp)
        conn.create_function("STRPOS", 2, _strpos)
        conn.create_function("CEIL", 1, _safe_unary(math.ceil))
        conn.create_function("CEILING", 1, _safe_unary(math.ceil))
        conn.create_function("FLOOR", 1, _safe_unary(math.floor))
        conn.create_function("SQRT", 1, _safe_unary(
            lambda x: math.sqrt(x) if x >= 0 else None))
        conn.create_function("EXP", 1, _safe_unary(math.exp))
        conn.create_function("LN", 1, _safe_unary(
            lambda x: math.log(x) if x > 0 else None))
        conn.create_function("LOG2", 1, _safe_unary(
            lambda x: math.log2(x) if x > 0 else None))
        conn.create_function("LOG10", 1, _safe_unary(
            lambda x: math.log10(x) if x > 0 else None))
        conn.create_function(
            "POWER", 2,
            lambda a, b: None if a is None or b is None else float(a) ** float(b),
        )
        conn.create_function(
            "LEAST", 2,
            lambda a, b: None if a is None or b is None else min(a, b),
        )
        conn.create_function(
            "GREATEST", 2,
            lambda a, b: None if a is None or b is None else max(a, b),
        )
        conn.create_function("YEAR", 1, _date_part(lambda dt: dt.year))
        conn.create_function("MONTH", 1, _date_part(lambda dt: dt.month))
        conn.create_function(
            "QUARTER", 1, _date_part(lambda dt: (dt.month - 1) // 3 + 1)
        )
        conn.create_function("DAYOFMONTH", 1, _date_part(lambda dt: dt.day))
        conn.create_function(
            "DAYOFWEEK", 1, _date_part(lambda dt: (dt.weekday() + 1) % 7)
        )
        conn.create_function("HOUR", 1, _date_part(lambda dt: dt.hour))
        conn.create_function("MINUTE", 1, _date_part(lambda dt: dt.minute))
        conn.create_function("SECOND", 1, _date_part(lambda dt: dt.second))
        conn.create_aggregate("MEDIAN", 1, _Median)
        conn.create_aggregate("STDDEV", 1, _Stddev)
        conn.create_aggregate("VARIANCE", 1, _Variance)
        conn.create_aggregate("QUANTILE", 2, _Quantile)

    # -- Backend interface ---------------------------------------------------

    def load_table(self, name, table):
        quoted = '"' + name.replace('"', '""') + '"'
        self.conn.execute("DROP TABLE IF EXISTS {}".format(quoted))
        decls = []
        for column_name, sql_type in table.schema():
            sqlite_type = {
                SQLType.DOUBLE: "REAL",
                SQLType.VARCHAR: "TEXT",
                SQLType.BOOLEAN: "INTEGER",
            }[sql_type]
            decls.append(
                '"{}" {}'.format(column_name.replace('"', '""'), sqlite_type)
            )
        if not decls:
            # SQLite cannot create a zero-column table; the embedded
            # engine can (an empty dataset with no rows).  A placeholder
            # column keeps loading consistent — it is absent from the
            # recorded schema and never inserted into or referenced.
            decls.append('"__empty" REAL')
        self.conn.execute(
            "CREATE TABLE {} ({})".format(quoted, ", ".join(decls))
        )
        placeholders = ", ".join("?" for _ in table.columns)
        insert_sql = "INSERT INTO {} VALUES ({})".format(quoted, placeholders)
        if table.columns:
            # Insert chunk-batch-wise so a chunked (or disk-backed) table
            # never fully materializes: each piece decodes only its own
            # rows, and its source pages are released once inserted.
            for lo, hi, piece in table.iter_chunk_batches(max_rows=65536):
                column_lists = [
                    column.to_list() for column in piece.columns.values()
                ]
                self.conn.executemany(insert_sql, list(zip(*column_lists)))
                for column in table.columns.values():
                    column.release(lo, hi)
        self.conn.commit()
        self._schemas[name] = table.schema()

    def _check_identifiers(self, sql):
        """Reject references to names no loaded table defines.

        SQLite quietly reads an unresolvable double-quoted identifier as
        a *string literal* (a documented legacy misfeature the stdlib
        module cannot switch off), so ``MIN("no_such_col")`` returns the
        text ``'no_such_col'`` where the embedded engine raises.  The
        generated SQL quotes every identifier and introduces every alias
        with ``AS``, so a quoted token that is neither a loaded table or
        column name nor an alias defined in the statement itself is an
        unknown column — raise exactly like the embedded engine does
        instead of letting the literal fallback fake a result.

        A reference's *own* trailing alias does not vouch for it: in
        ``SELECT "uid" AS "uid"`` the alias merely renames whatever
        ``"uid"`` resolves to, so the definition that excuses a
        reference must come from some other occurrence (typically the
        projection of an inner derived table)."""
        identifiers = _quoted_identifiers(sql)
        definition_counts = {}
        for name, is_alias in identifiers:
            if is_alias:
                definition_counts[name] = definition_counts.get(name, 0) + 1
        known = set()
        for table_name, schema in self._schemas.items():
            known.add(table_name)
            known.update(column_name for column_name, _ in schema)
        for position, (name, is_alias) in enumerate(identifiers):
            if is_alias or name in known:
                continue
            definitions = definition_counts.get(name, 0)
            follower = (identifiers[position + 1]
                        if position + 1 < len(identifiers) else None)
            if follower == (name, True):
                definitions -= 1  # its own alias does not count
            if definitions < 1:
                raise BackendError("unknown column '{}'".format(name))

    def execute(self, sql):
        self._check_identifiers(sql)

        def run():
            try:
                # A dedicated plain-tuple cursor: results go straight from
                # the fetch into columns, skipping the dict-row detour
                # (conn-level row_factory stays sqlite3.Row for the
                # administrative queries).
                cursor = self.conn.cursor()
                cursor.row_factory = None
                cursor.execute(sql)
            except sqlite3.Error as exc:
                raise BackendError("sqlite error: {}".format(exc)) from exc
            tuples = cursor.fetchall()
            names = (
                [description[0] for description in cursor.description]
                if cursor.description
                else []
            )
            return _tuples_to_batch(names, tuples)

        return self._timed(run, sql)

    def explain(self, sql):
        try:
            cursor = self.conn.execute("EXPLAIN QUERY PLAN " + sql)
        except sqlite3.Error as exc:
            raise BackendError("sqlite error: {}".format(exc)) from exc
        return "\n".join(str(tuple(row)) for row in cursor.fetchall())

    def table_names(self):
        cursor = self.conn.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table' ORDER BY name"
        )
        return [row[0] for row in cursor.fetchall()]

    def row_count(self, name):
        quoted = '"' + name.replace('"', '""') + '"'
        cursor = self.conn.execute("SELECT COUNT(*) FROM {}".format(quoted))
        return int(cursor.fetchone()[0])

    def table_schema(self, name):
        schema = self._schemas.get(name)
        return tuple(schema) if schema is not None else None

    def close(self):
        self.conn.close()


def _tuples_to_batch(names, tuples):
    """Transpose fetched result tuples into a ColumnBatch with inferred
    types — the backend's output is columnar from the first copy."""
    batch = ColumnBatch()
    transposed = list(zip(*tuples)) if tuples else [()] * len(names)
    for index, name in enumerate(names):
        batch.add_column(name, Column.from_values(transposed[index]))
    if not names:
        batch._num_rows = len(tuples)
    return batch
