"""Vega-Lite charts through the VegaPlus optimizer.

The paper argues that improving Vega benefits its whole ecosystem —
"including Vega-Lite".  This example writes three charts in Vega-Lite,
lowers them to Vega with :func:`repro.spec.compile_vegalite`, and runs
each through the optimizer, showing the pipeline and the chosen cut.

Run with::

    python examples/vegalite_charts.py
"""

from repro import VegaPlus
from repro.datagen import generate_flights
from repro.spec import compile_vegalite, parse_spec

CHARTS = {
    "delay histogram": {
        "mark": "bar",
        "data": {"name": "flights"},
        "transform": [{"filter": "datum.dep_delay != null"}],
        "encoding": {
            "x": {"field": "dep_delay", "type": "quantitative",
                  "bin": {"maxbins": 15}},
            "y": {"aggregate": "count", "type": "quantitative"},
        },
    },
    "mean delay by carrier": {
        "mark": "bar",
        "data": {"name": "flights"},
        "encoding": {
            "x": {"field": "carrier", "type": "nominal"},
            "y": {"field": "dep_delay", "aggregate": "mean",
                  "type": "quantitative"},
        },
    },
    "flights per year by carrier": {
        "mark": "line",
        "data": {"name": "flights"},
        "encoding": {
            "x": {"field": "year", "type": "ordinal"},
            "y": {"aggregate": "count", "type": "quantitative"},
            "color": {"field": "carrier", "type": "nominal"},
        },
    },
}


def main():
    flights = generate_flights(150_000)
    for title, vl_spec in CHARTS.items():
        vega_spec = compile_vegalite(vl_spec)
        parsed = parse_spec(vega_spec)
        pipeline = " -> ".join(
            step.type for step in parsed.dataset("table").transform
        ) or "(passthrough)"

        session = VegaPlus(vega_spec, data={"flights": flights})
        result = session.startup()
        plan = session.plan.datasets["table"]

        print("== {} ==".format(title))
        print("  pipeline: {}".format(pipeline))
        print("  cut: {}/{} (server-side prefix)".format(
            plan.cut, plan.max_cut))
        print("  startup: {:.4f}s, {} result rows".format(
            result.total_seconds, len(result.datasets["table"])))
        for row in result.datasets["table"][:3]:
            print("    {}".format(row))
        print()


if __name__ == "__main__":
    main()
