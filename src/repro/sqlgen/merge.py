"""Query merging (paper §2.2 step 3, "node merging").

The pipeline composer nests one subquery per transform.  ``merge_query``
collapses that nesting where semantics allow, so the DBMS sees one flat
query instead of a tower of derived tables:

* a pass-through outer query (SELECT all inner outputs unchanged, no
  other clauses) is replaced by its inner query;
* an outer query over a *simple* inner query (projection/filter only —
  no grouping, windows, distinct, order, or limit) is merged by
  substituting the inner item expressions into the outer expressions and
  AND-ing the WHERE clauses.

The second rule is what fuses scan -> filter -> formula/bin -> aggregate
chains into a single SELECT ... GROUP BY over the base table.
"""

from repro.engine import sqlast


def merge_query(select):
    """Collapse mergeable derived tables; returns a new Select."""
    changed = True
    while changed:
        select, changed = _merge_once(select)
    return select


def _merge_once(select):
    # Recurse into FROM first so inner towers collapse bottom-up.
    changed = False
    from_ = select.from_
    if isinstance(from_, sqlast.SubqueryRef):
        inner, inner_changed = _merge_once(from_.query)
        if inner_changed:
            from_ = sqlast.SubqueryRef(inner, from_.alias)
            select = _replace_from(select, from_)
            changed = True
        merged = _try_merge(select)
        if merged is not None:
            return merged, True
    return select, changed


def _replace_from(select, from_):
    return sqlast.Select(
        items=select.items,
        from_=from_,
        joins=select.joins,
        where=select.where,
        group_by=select.group_by,
        having=select.having,
        order_by=select.order_by,
        limit=select.limit,
        offset=select.offset,
        distinct=select.distinct,
    )


def _try_merge(outer):
    """Attempt to merge ``outer`` with its immediate derived table."""
    if not isinstance(outer.from_, sqlast.SubqueryRef):
        return None
    if outer.joins:
        return None
    inner = outer.from_.query
    inner_alias = outer.from_.alias

    if _is_passthrough(outer, inner):
        return inner

    if not _is_simple(inner):
        return None

    mapping = _output_mapping(inner)
    if mapping is None:
        return None

    def substitute(expr):
        return _substitute(expr, mapping, inner_alias)

    try:
        items = tuple(
            sqlast.SelectItem(substitute(item.expr), item.alias)
            for item in outer.items
        )
        where = substitute(outer.where) if outer.where is not None else None
        group_by = tuple(substitute(expr) for expr in outer.group_by)
        having = substitute(outer.having) if outer.having is not None else None
        order_by = tuple(
            sqlast.OrderItem(substitute(item.expr), item.descending,
                             item.nulls_first)
            for item in outer.order_by
        )
    except _UnknownColumn:
        return None

    if inner.where is not None:
        where = (
            inner.where
            if where is None
            else sqlast.BinaryOp("AND", inner.where, where)
        )
    return sqlast.Select(
        items=items,
        from_=inner.from_,
        joins=inner.joins,
        where=where,
        group_by=group_by,
        having=having,
        order_by=order_by,
        limit=outer.limit,
        offset=outer.offset,
        distinct=outer.distinct,
    )


def _is_passthrough(outer, inner):
    """Outer selects exactly the inner outputs, unchanged, no clauses."""
    if (outer.where is not None or outer.group_by or outer.having
            or outer.order_by or outer.limit is not None
            or outer.offset is not None or outer.distinct or outer.joins):
        return False
    inner_names = _output_names(inner)
    if inner_names is None or len(outer.items) != len(inner_names):
        return False
    for item, name in zip(outer.items, inner_names):
        expr = item.expr
        if not isinstance(expr, sqlast.ColumnRef) or expr.name != name:
            return False
        if (item.alias or expr.name) != name:
            return False
    return True


def _is_simple(inner):
    """Projection/filter only: safe to substitute into an outer query."""
    if (inner.group_by or inner.having or inner.order_by
            or inner.limit is not None or inner.offset is not None
            or inner.distinct or inner.joins):
        return False
    for item in inner.items:
        for node in sqlast.walk_expr(item.expr):
            if isinstance(node, (sqlast.WindowFunc, sqlast.Star)):
                return False
            if sqlast.is_aggregate_call(node):
                return False
    return True


def _output_names(select):
    names = []
    for item in select.items:
        if isinstance(item.expr, sqlast.Star):
            return None
        if item.alias:
            names.append(item.alias)
        elif isinstance(item.expr, sqlast.ColumnRef):
            names.append(item.expr.name)
        else:
            names.append(item.expr.to_sql())
    return names


def _output_mapping(select):
    names = _output_names(select)
    if names is None:
        return None
    return dict(zip(names, (item.expr for item in select.items)))


class _UnknownColumn(Exception):
    pass


def _substitute(node, mapping, inner_alias):
    if isinstance(node, sqlast.ColumnRef):
        if node.table is not None and node.table != inner_alias:
            raise _UnknownColumn(node.table)
        if node.name not in mapping:
            raise _UnknownColumn(node.name)
        return mapping[node.name]
    if isinstance(node, sqlast.Star):
        # COUNT(*): row counts survive merging because the inner query is
        # projection/filter-only (its WHERE is AND-ed into the merged one).
        return node

    def recurse(child):
        return _substitute(child, mapping, inner_alias)

    if isinstance(node, sqlast.UnaryOp):
        return sqlast.UnaryOp(node.op, recurse(node.operand))
    if isinstance(node, sqlast.BinaryOp):
        return sqlast.BinaryOp(node.op, recurse(node.left), recurse(node.right))
    if isinstance(node, sqlast.IsNull):
        return sqlast.IsNull(recurse(node.operand), node.negated)
    if isinstance(node, sqlast.InList):
        return sqlast.InList(
            recurse(node.operand),
            tuple(recurse(item) for item in node.items),
            node.negated,
        )
    if isinstance(node, sqlast.Between):
        return sqlast.Between(
            recurse(node.operand), recurse(node.low), recurse(node.high),
            node.negated,
        )
    if isinstance(node, sqlast.FuncCall):
        return sqlast.FuncCall(
            node.name, tuple(recurse(arg) for arg in node.args), node.distinct
        )
    if isinstance(node, sqlast.WindowFunc):
        return sqlast.WindowFunc(
            recurse(node.func),
            tuple(recurse(expr) for expr in node.partition_by),
            tuple(
                sqlast.OrderItem(recurse(item.expr), item.descending,
                                 item.nulls_first)
                for item in node.order_by
            ),
        )
    if isinstance(node, sqlast.Case):
        return sqlast.Case(
            tuple((recurse(c), recurse(r)) for c, r in node.whens),
            recurse(node.default) if node.default is not None else None,
        )
    if isinstance(node, sqlast.Cast):
        return sqlast.Cast(recurse(node.operand), node.type_name)
    return node
