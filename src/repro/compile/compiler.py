"""Compile a parsed Vega spec into a reactive dataflow graph.

This is the client-side half of the paper's §2: "a dataflow is
automatically constructed based on the user's declarative specification".
The compiled artifact keeps enough structure for the partition planner to
reason about — per-dataset operator pipelines, signal bindings, and mark
field usage.
"""

from dataclasses import dataclass, field
from typing import Dict, List

from repro.dataflow import (
    Dataflow,
    DataRef,
    DataSource,
    OperatorRef,
    SignalRef,
    create_transform,
)
from repro.spec.model import Spec, SpecError
from repro.spec.parse import parse_spec
from repro.spec.validate import validate_spec


@dataclass
class CompiledSpec:
    """A compiled specification: the dataflow plus structural indexes."""

    spec: Spec
    flow: Dataflow
    #: dataset name -> terminal operator (its pulse holds the dataset rows)
    dataset_ops: Dict[str, object] = field(default_factory=dict)
    #: dataset name -> ordered pipeline operators (source first)
    pipelines: Dict[str, List[object]] = field(default_factory=dict)
    #: signal name -> operator, for operator-published signals (extent)
    signal_ops: Dict[str, object] = field(default_factory=dict)

    def run(self):
        return self.flow.run()

    def results(self, dataset):
        pulse = self.dataset_ops[dataset].last_pulse
        return [] if pulse is None else pulse.rows

    def set_signal(self, name, value):
        self.flow.set_signal(name, value)

    def source_operator(self, dataset):
        return self.pipelines[dataset][0]


def compile_spec(source, data_tables=None, validate=True):
    """Compile a spec (dict/JSON/Spec) into a :class:`CompiledSpec`.

    ``data_tables`` maps root dataset names to row lists, standing in for
    the URLs a real deployment would load (datasets with inline ``values``
    need no entry).
    """
    spec = source if isinstance(source, Spec) else parse_spec(source)
    if validate:
        validate_spec(spec)
    data_tables = data_tables or {}

    flow = Dataflow()
    compiled = CompiledSpec(spec=spec, flow=flow)

    if any(signal.update for signal in spec.signals):
        from repro.dataflow.signals import SignalGraph

        graph = SignalGraph()
        for signal in spec.signals:
            graph.declare(signal.name, signal.value, signal.update)
        graph.initialize()
        flow.attach_signal_graph(graph)
    else:
        for signal in spec.signals:
            flow.add_signal(signal.name, signal.value)

    for dataset in _ordered_datasets(spec):
        _compile_dataset(dataset, spec, flow, compiled, data_tables)

    flow.rank()
    return compiled


def _ordered_datasets(spec):
    """Datasets in dependency order (sources before derivations)."""
    remaining = list(spec.data)
    done = set()
    ordered = []
    while remaining:
        progressed = False
        for dataset in list(remaining):
            if dataset.source is None or dataset.source in done:
                ordered.append(dataset)
                done.add(dataset.name)
                remaining.remove(dataset)
                progressed = True
        if not progressed:
            raise SpecError(
                "circular dataset dependencies: {}".format(
                    ", ".join(d.name for d in remaining)
                )
            )
    return ordered


def _compile_dataset(dataset, spec, flow, compiled, data_tables):
    if dataset.source is not None:
        upstream = compiled.dataset_ops[dataset.source]
        pipeline = []
        current = upstream
    else:
        rows = dataset.values
        if rows is None:
            rows = data_tables.get(dataset.name)
        if rows is None:
            raise SpecError(
                "no data provided for root dataset {!r}".format(dataset.name)
            )
        current = flow.add(DataSource(dataset.name + ":source", rows))
        pipeline = [current]

    for index, step in enumerate(dataset.transform):
        params = _convert_params(step.params, compiled, spec)
        name = "{}:{}:{}".format(dataset.name, index, step.type)
        operator = flow.add(
            create_transform(step.type, name, params, source=current)
        )
        if step.output_signal:
            compiled.signal_ops[step.output_signal] = operator
        pipeline.append(operator)
        current = operator

    compiled.dataset_ops[dataset.name] = current
    compiled.pipelines[dataset.name] = pipeline


def _convert_params(params, compiled, spec):
    """Convert raw JSON parameter values into runtime parameter objects."""
    converted = {}
    for key, value in params.items():
        if key == "from":
            ref = value.get("data") if isinstance(value, dict) else value
            if ref not in compiled.dataset_ops:
                raise SpecError(
                    "lookup references dataset {!r} which is not yet "
                    "compiled".format(ref)
                )
            converted["from_rows"] = DataRef(compiled.dataset_ops[ref])
            continue
        converted[key] = _convert_value(value, compiled, spec)
    return converted


def _convert_value(value, compiled, spec):
    if isinstance(value, dict):
        if set(value.keys()) == {"signal"}:
            expr = value["signal"]
            if isinstance(expr, str) and expr in compiled.signal_ops:
                return OperatorRef(compiled.signal_ops[expr])
            return SignalRef(expr)
        return {
            key: _convert_value(item, compiled, spec)
            for key, item in value.items()
        }
    if isinstance(value, list):
        return [_convert_value(item, compiled, spec) for item in value]
    return value
