"""The US Airline Flights demo scenario (paper §3, Figure 2).

A record-count histogram over a user-selected field with a bin-count
slider.  Shows the optimizer's plan, the partitioned dataflow graph with
SQL tooltips (the performance view), and an interactive exploration
session with idle-time prefetching.

Run with::

    python examples/flights_histogram.py [num_rows]
"""

import sys

from repro import VegaPlus
from repro.datagen import generate_flights
from repro.interact import option_cycle, replay, slider_drag
from repro.perf import compare_plans, plan_graph
from repro.spec import flights_histogram_spec


def main(num_rows=200_000):
    print("generating {} synthetic flights...".format(num_rows))
    flights = generate_flights(num_rows)

    session = VegaPlus(
        flights_histogram_spec(field="dep_delay", maxbins=20),
        data={"flights": flights},
        latency_ms=20,
        bandwidth_mbps=100,
    )

    print("\n== startup ==")
    result = session.startup()
    print(result.summary())
    print("\nhistogram (first bins):")
    for row in session.results("binned")[:6]:
        print("  [{:>8} .. {:>8}) {:>8.0f}".format(
            row["bin0"], row["bin1"], row["count"]
        ))

    print("\n== partitioned dataflow graph (performance view) ==")
    graph = plan_graph(session)
    for node in graph.nodes:
        print("  {:<22} {:<10} {}".format(
            node.name, node.placement,
            (node.tooltip[:70] + "…") if len(node.tooltip) > 70
            else node.tooltip,
        ))

    print("\n== plan comparison (the Figure-3 stacked bars) ==")
    plans = [
        session.baseline_plan(),
        session.plan,
        session.custom_plan({"binned": 1}, label="user:bin-on-client"),
    ]
    comparison = compare_plans(session, plans)
    print(comparison.format_table())

    print("\n== interactive session: bin slider then field drop-down ==")
    session.startup()
    slider_report = replay(
        session, slider_drag("maxbins", 20, 80, step=10), prefetch=True
    )
    print("slider: {} interactions, mean latency {:.4f}s, "
          "cache hit rate {:.0%}".format(
              slider_report.interactions, slider_report.mean_latency,
              slider_report.cache_hit_rate))
    dropdown_report = replay(
        session,
        option_cycle("binField", ["distance", "air_time", "arr_delay"]),
        prefetch=True,
    )
    print("drop-down: {} interactions, mean latency {:.4f}s, "
          "cache hit rate {:.0%}, prefetches {}".format(
              dropdown_report.interactions, dropdown_report.mean_latency,
              dropdown_report.cache_hit_rate, dropdown_report.prefetches))

    print("\nnetwork totals: {} round trips, {:.1f} KB received".format(
        session.network_stats().round_trips,
        session.network_stats().bytes_received / 1024,
    ))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200_000)
