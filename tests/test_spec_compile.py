"""Spec parsing, validation, and spec->dataflow compilation tests."""

import pytest

from repro.compile import compile_spec
from repro.spec import (
    SpecError,
    census_stacked_area_spec,
    flights_histogram_spec,
    parse_spec,
    simple_filter_spec,
    validate_spec,
)


class TestParsing:
    def test_parse_flights_spec(self):
        spec = parse_spec(flights_histogram_spec())
        assert spec.signal_names() == ["binField", "maxbins"]
        assert spec.dataset_names() == ["flights", "binned"]
        assert len(spec.dataset("binned").transform) == 3

    def test_parse_from_json_text(self):
        import json

        spec = parse_spec(json.dumps(simple_filter_spec()))
        assert spec.dataset_names() == ["events", "big"]

    def test_invalid_json(self):
        with pytest.raises(SpecError):
            parse_spec("{not json")

    def test_non_object(self):
        with pytest.raises(SpecError):
            parse_spec("[1, 2]")

    def test_signal_requires_name(self):
        with pytest.raises(SpecError):
            parse_spec({"signals": [{"value": 1}]})

    def test_transform_requires_type(self):
        with pytest.raises(SpecError):
            parse_spec({"data": [{"name": "d", "values": [],
                                  "transform": [{"field": "x"}]}]})

    def test_output_signal_captured(self):
        spec = parse_spec(flights_histogram_spec())
        assert spec.dataset("binned").transform[0].output_signal == "ext"

    def test_mark_fields(self):
        spec = parse_spec(flights_histogram_spec())
        assert spec.mark_fields("binned") == {"bin0", "bin1", "count"}

    def test_interactive_signals(self):
        spec = parse_spec(flights_histogram_spec())
        assert {s.name for s in spec.interactive_signals()} == \
            {"binField", "maxbins"}


class TestValidation:
    def test_valid_specs_pass(self):
        for builder in (flights_histogram_spec, census_stacked_area_spec,
                        simple_filter_spec):
            validate_spec(parse_spec(builder()))

    def test_duplicate_dataset(self):
        raw = {"data": [{"name": "d", "values": []},
                        {"name": "d", "values": []}]}
        with pytest.raises(SpecError):
            validate_spec(parse_spec(raw))

    def test_unknown_source(self):
        raw = {"data": [{"name": "d", "source": "nope"}]}
        with pytest.raises(SpecError):
            validate_spec(parse_spec(raw))

    def test_self_source(self):
        raw = {"data": [{"name": "d", "source": "d"}]}
        with pytest.raises(SpecError):
            validate_spec(parse_spec(raw))

    def test_dataset_without_origin(self):
        raw = {"data": [{"name": "d"}]}
        with pytest.raises(SpecError):
            validate_spec(parse_spec(raw))

    def test_unknown_transform_type(self):
        raw = {"data": [{"name": "d", "values": [],
                         "transform": [{"type": "quantumsort"}]}]}
        with pytest.raises(SpecError):
            validate_spec(parse_spec(raw))

    def test_unknown_signal_reference(self):
        raw = {"data": [{"name": "d", "values": [],
                         "transform": [{"type": "bin", "field": "x",
                                        "maxbins": {"signal": "nope"}}]}]}
        with pytest.raises(SpecError):
            validate_spec(parse_spec(raw))

    def test_mark_unknown_dataset(self):
        raw = {"data": [{"name": "d", "values": []}],
               "marks": [{"type": "rect", "from": {"data": "nope"}}]}
        with pytest.raises(SpecError):
            validate_spec(parse_spec(raw))

    def test_transform_signal_collision(self):
        raw = {
            "signals": [{"name": "ext", "value": 1}],
            "data": [{"name": "d", "values": [],
                      "transform": [{"type": "extent", "field": "x",
                                     "signal": "ext"}]}],
        }
        with pytest.raises(SpecError):
            validate_spec(parse_spec(raw))


class TestCompilation:
    def test_flights_compiles_and_runs(self):
        rows = [{"dep_delay": float(i % 60), "arr_delay": 1.0,
                 "distance": 100.0, "air_time": 10.0} for i in range(500)]
        compiled = compile_spec(
            flights_histogram_spec(), data_tables={"flights": rows}
        )
        compiled.run()
        binned = compiled.results("binned")
        assert binned
        assert sum(row["count"] for row in binned) == 500

    def test_census_compiles_and_runs(self):
        rows = [
            {"year": 1900.0, "job": "Farmer", "sex": "male", "count": 10.0},
            {"year": 1900.0, "job": "Nurse", "sex": "female", "count": 5.0},
            {"year": 1910.0, "job": "Farmer", "sex": "male", "count": 8.0},
        ]
        compiled = compile_spec(
            census_stacked_area_spec(), data_tables={"census": rows}
        )
        compiled.run()
        stacked = compiled.results("stacked")
        assert all("y0" in row and "y1" in row for row in stacked)

    def test_census_sex_filter_signal(self):
        rows = [
            {"year": 1900.0, "job": "Farmer", "sex": "male", "count": 10.0},
            {"year": 1900.0, "job": "Nurse", "sex": "female", "count": 5.0},
        ]
        compiled = compile_spec(
            census_stacked_area_spec(), data_tables={"census": rows}
        )
        compiled.run()
        assert len(compiled.results("stacked")) == 2
        compiled.set_signal("sexFilter", "female")
        compiled.run()
        assert [row["job"] for row in compiled.results("stacked")] == ["Nurse"]

    def test_census_regex_search(self):
        rows = [
            {"year": 1900.0, "job": "Farm Laborer", "sex": "male", "count": 1.0},
            {"year": 1900.0, "job": "Nurse", "sex": "female", "count": 1.0},
        ]
        compiled = compile_spec(
            census_stacked_area_spec(), data_tables={"census": rows}
        )
        compiled.set_signal("searchPattern", "^Farm")
        compiled.run()
        assert [row["job"] for row in compiled.results("stacked")] == \
            ["Farm Laborer"]

    def test_missing_root_data(self):
        with pytest.raises(SpecError):
            compile_spec(flights_histogram_spec(), data_tables={})

    def test_inline_values_need_no_tables(self):
        raw = {
            "data": [{
                "name": "d",
                "values": [{"x": 1}, {"x": 2}],
                "transform": [{"type": "filter", "expr": "datum.x > 1"}],
            }]
        }
        compiled = compile_spec(raw)
        compiled.run()
        assert compiled.results("d") == [{"x": 2}]

    def test_lookup_across_datasets(self):
        raw = {
            "data": [
                {"name": "airlines",
                 "values": [{"iata": "AA", "label": "American"}]},
                {"name": "flights", "values": [{"carrier": "AA"}],
                 "transform": [
                     {"type": "lookup", "from": {"data": "airlines"},
                      "key": "iata", "fields": ["carrier"],
                      "values": ["label"], "as": ["airline"]},
                 ]},
            ]
        }
        compiled = compile_spec(raw)
        compiled.run()
        assert compiled.results("flights")[0]["airline"] == "American"

    def test_circular_datasets_rejected(self):
        raw = {
            "data": [
                {"name": "a", "source": "b"},
                {"name": "b", "source": "a"},
            ]
        }
        with pytest.raises(SpecError):
            compile_spec(raw, validate=False)

    def test_pipelines_index(self):
        rows = [{"dep_delay": 1.0}]
        compiled = compile_spec(
            flights_histogram_spec(), data_tables={"flights": rows}
        )
        assert len(compiled.pipelines["binned"]) == 3
        assert compiled.pipelines["flights"][0].name == "flights:source"
        assert "ext" in compiled.signal_ops


class TestAxesLegends:
    BASE = {
        "data": [{"name": "d", "values": [{"x": 1.0}]}],
        "scales": [
            {"name": "xscale", "type": "linear",
             "domain": {"data": "d", "field": "x"}, "range": "width"},
        ],
    }

    def test_axes_parsed(self):
        raw = dict(self.BASE)
        raw["axes"] = [{"scale": "xscale", "orient": "bottom",
                        "title": "X"}]
        spec = validate_spec(parse_spec(raw))
        assert spec.axes[0].scale == "xscale"
        assert spec.axes[0].title == "X"

    def test_axis_requires_scale(self):
        raw = dict(self.BASE)
        raw["axes"] = [{"orient": "left"}]
        with pytest.raises(SpecError):
            parse_spec(raw)

    def test_axis_unknown_scale_rejected(self):
        raw = dict(self.BASE)
        raw["axes"] = [{"scale": "nope"}]
        with pytest.raises(SpecError):
            validate_spec(parse_spec(raw))

    def test_legend_parsed(self):
        raw = dict(self.BASE)
        raw["legends"] = [{"fill": "xscale", "title": "Legend"}]
        spec = validate_spec(parse_spec(raw))
        assert spec.legends[0].scales == {"fill": "xscale"}

    def test_legend_without_channel_rejected(self):
        raw = dict(self.BASE)
        raw["legends"] = [{"title": "Empty"}]
        with pytest.raises(SpecError):
            parse_spec(raw)

    def test_legend_unknown_scale_rejected(self):
        raw = dict(self.BASE)
        raw["legends"] = [{"fill": "ghost"}]
        with pytest.raises(SpecError):
            validate_spec(parse_spec(raw))
