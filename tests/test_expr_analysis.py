"""Tests for field/signal extraction, constant folding, and SQL compilation."""

import pytest

from repro.expr import ast
from repro.expr.constfold import fold, is_signal_free
from repro.expr.errors import UntranslatableExpression
from repro.expr.fields import (
    datum_fields,
    has_dynamic_field_access,
    is_constant,
    signal_refs,
)
from repro.expr.sqlcompile import compile_expression, is_translatable, sql_literal


class TestFieldExtraction:
    def test_simple_fields(self):
        assert datum_fields("datum.a + datum.b") == {"a", "b"}

    def test_bracket_literal_field(self):
        assert datum_fields("datum['air time']") == {"air time"}

    def test_nested_in_call(self):
        assert datum_fields("max(datum.x, abs(datum.y))") == {"x", "y"}

    def test_signals_not_fields(self):
        assert datum_fields("threshold * 2") == set()

    def test_dynamic_access_flagged(self):
        assert has_dynamic_field_access("datum[fieldSignal]") is True
        assert has_dynamic_field_access("datum.fixed") is False

    def test_field_inside_ternary(self):
        assert datum_fields("flag ? datum.a : datum.b") == {"a", "b"}


class TestSignalExtraction:
    def test_simple(self):
        assert signal_refs("threshold + 1") == {"threshold"}

    def test_excludes_datum_constants_functions(self):
        assert signal_refs("abs(datum.x) + PI") == set()

    def test_known_signal_filter(self):
        refs = signal_refs("a + b", known_signals={"a"})
        assert refs == {"a"}

    def test_is_constant(self):
        assert is_constant("1 + 2 * 3") is True
        assert is_constant("datum.x") is False
        assert is_constant("sig") is False


class TestConstantFolding:
    def test_arithmetic_folds(self):
        assert fold("1 + 2 * 3") == ast.Literal(7.0)

    def test_string_concat_folds(self):
        assert fold("'a' + 'b'") == ast.Literal("ab")

    def test_function_folds(self):
        assert fold("abs(-5)") == ast.Literal(5.0)

    def test_datum_untouched(self):
        node = fold("datum.x + 1")
        assert isinstance(node, ast.Binary)

    def test_partial_fold_inside(self):
        node = fold("datum.x + (2 * 3)")
        assert node.right == ast.Literal(6.0)

    def test_add_zero_identity(self):
        assert fold("datum.x + 0") == ast.Member(
            ast.Identifier("datum"), ast.Literal("x"), computed=False
        )

    def test_multiply_one_identity(self):
        assert fold("1 * datum.x") == ast.Member(
            ast.Identifier("datum"), ast.Literal("x"), computed=False
        )

    def test_constant_ternary_picks_branch(self):
        assert fold("1 < 2 ? datum.a : datum.b") == ast.Member(
            ast.Identifier("datum"), ast.Literal("a"), computed=False
        )

    def test_true_and_x_simplifies(self):
        node = fold("true && datum.ok")
        assert isinstance(node, ast.Member)

    def test_signal_free_detection(self):
        assert is_signal_free("datum.x * 2") is True
        assert is_signal_free("datum.x * factor") is False


class TestSqlLiteral:
    def test_null(self):
        assert sql_literal(None) == "NULL"

    def test_booleans(self):
        assert sql_literal(True) == "TRUE"
        assert sql_literal(False) == "FALSE"

    def test_integral_float_rendered_as_int(self):
        assert sql_literal(15.0) == "15"

    def test_float(self):
        assert sql_literal(1.5) == "1.5"

    def test_string_escaping(self):
        assert sql_literal("O'Hare") == "'O''Hare'"

    def test_nan_is_null(self):
        assert sql_literal(float("nan")) == "NULL"


class TestSqlCompilation:
    def test_comparison(self):
        # Ordered comparisons wrap in COALESCE(..., FALSE): JS yields a
        # plain false for null operands where SQL would yield NULL (which
        # flips under NOT).
        sql = compile_expression("datum.delay > 15")
        assert sql == 'COALESCE(("delay" > 15), FALSE)'

    def test_signal_inlined(self):
        sql = compile_expression("datum.delay > cutoff", signals={"cutoff": 30})
        assert sql == 'COALESCE(("delay" > 30), FALSE)'

    def test_logic(self):
        sql = compile_expression("datum.a > 1 && datum.b < 2")
        assert "AND" in sql

    def test_equality_becomes_single_equals(self):
        assert "=" in compile_expression("datum.x == 5")
        assert "==" not in compile_expression("datum.x == 5")

    def test_null_comparison_becomes_is_null(self):
        assert compile_expression("datum.x == null") == '("x" IS NULL)'
        assert compile_expression("datum.x != null") == '("x" IS NOT NULL)'

    def test_ternary_becomes_case(self):
        sql = compile_expression("datum.x > 0 ? 1 : 0")
        assert sql.startswith("CASE WHEN")

    def test_functions_map(self):
        assert compile_expression("abs(datum.x)") == 'ABS("x")'
        assert compile_expression("year(datum.d)") == 'YEAR("d")'

    def test_month_offset(self):
        assert compile_expression("month(datum.d)") == '(MONTH("d") - 1)'

    def test_string_concat_uses_pipes(self):
        sql = compile_expression("'ap' + datum.code")
        assert "||" in sql

    def test_test_translates_to_regexp(self):
        sql = compile_expression("test('^Farm', datum.job)")
        assert "REGEXP" in sql

    def test_test_with_dynamic_pattern_untranslatable(self):
        with pytest.raises(UntranslatableExpression):
            compile_expression("test(pattern, datum.job)", signals={})

    def test_field_quoting_handles_spaces(self):
        assert compile_expression("datum['air time']") == '"air time"'

    def test_field_map_substitution(self):
        sql = compile_expression(
            "datum.total * 2", field_map={"total": "SUM(amount)"}
        )
        assert sql == "(SUM(amount) * 2)"

    def test_unknown_function_untranslatable(self):
        with pytest.raises(UntranslatableExpression):
            compile_expression("sampleLogNormal(datum.x)")

    def test_unbound_signal_untranslatable(self):
        with pytest.raises(UntranslatableExpression):
            compile_expression("datum.x > cutoff")

    def test_dynamic_field_resolves_through_bound_signal(self):
        # The binField drop-down pattern: a signal-valued field reference
        # becomes a concrete column once the signal value is inlined.
        assert compile_expression("datum[f]", signals={"f": "x"}) == '"x"'

    def test_dynamic_field_unbound_untranslatable(self):
        with pytest.raises(UntranslatableExpression):
            compile_expression("datum[f]", signals={})

    def test_is_translatable_helper(self):
        assert is_translatable("datum.x + 1") is True
        assert is_translatable("peek(data('t'))") is False

    def test_constant_folding_applied_before_emit(self):
        sql = compile_expression("datum.x + (1 + 1)")
        assert sql == '("x" + 2)'

    def test_power_operator(self):
        assert compile_expression("datum.x ** 2") == 'POWER("x", 2)'
