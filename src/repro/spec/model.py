"""Typed model of a Vega specification (the subset VegaPlus optimizes).

The model covers signals, data sources with transform pipelines, scales,
and marks with encodings — enough to compile the demo scenarios (the
flights histogram and the census stacked area) and any spec built from
the registered transform types.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional


class SpecError(Exception):
    """The specification is malformed; carries a JSON-ish path."""

    def __init__(self, message, path=""):
        self.path = path
        if path:
            message = "{} (at {})".format(message, path)
        super().__init__(message)


@dataclass
class SignalSpec:
    """A named reactive value, optionally UI-bound.

    ``bind`` mirrors Vega's input binding ({"input": "range", ...}); the
    interaction substrate uses it to know which signals a user can drive.
    """

    name: str
    value: object = None
    bind: Optional[dict] = None
    update: Optional[str] = None
    #: event handlers: list of {"events": type, "update": expr} clauses
    on: Optional[list] = None

    @property
    def interactive(self):
        return self.bind is not None or bool(self.on)


@dataclass
class TransformSpec:
    """One transform step: a type plus raw parameters.

    Parameter values may embed signal references as ``{"signal": expr}``
    dicts, exactly like Vega JSON.  ``output_signal`` is Vega's
    ``"signal"`` key on value transforms (extent) that exposes the result
    as a named signal.
    """

    type: str
    params: Dict[str, object] = field(default_factory=dict)
    output_signal: Optional[str] = None


@dataclass
class DataSpec:
    """A dataset: inline values, or derived from another dataset, plus a
    transform pipeline."""

    name: str
    values: Optional[List[dict]] = None
    source: Optional[str] = None
    url: Optional[str] = None
    transform: List[TransformSpec] = field(default_factory=list)

    @property
    def is_root(self):
        return self.source is None


@dataclass
class ScaleSpec:
    """A scale: we record name/type/domain/range for completeness and for
    field-usage analysis (scale domains reference data fields)."""

    name: str
    type: str = "linear"
    domain: Optional[dict] = None
    range: object = None


@dataclass
class AxisSpec:
    """An axis bound to a scale."""

    scale: str
    orient: str = "bottom"
    title: Optional[str] = None


@dataclass
class LegendSpec:
    """A legend bound to one or more scales (fill/stroke/size...)."""

    scales: Dict[str, str] = field(default_factory=dict)
    title: Optional[str] = None


@dataclass
class EncodingChannel:
    """One mark encoding channel (x, y, width, ...)."""

    channel: str
    field: Optional[str] = None
    scale: Optional[str] = None
    value: object = None
    signal: Optional[str] = None


@dataclass
class MarkSpec:
    """A mark consuming a dataset through encodings."""

    type: str
    data: Optional[str] = None
    encodings: List[EncodingChannel] = field(default_factory=list)

    def fields(self):
        """Data fields referenced by this mark's encodings."""
        return {
            channel.field for channel in self.encodings if channel.field
        }


@dataclass
class Spec:
    """A parsed Vega specification."""

    width: int = 400
    height: int = 200
    signals: List[SignalSpec] = field(default_factory=list)
    data: List[DataSpec] = field(default_factory=list)
    scales: List[ScaleSpec] = field(default_factory=list)
    marks: List[MarkSpec] = field(default_factory=list)
    axes: List[AxisSpec] = field(default_factory=list)
    legends: List[LegendSpec] = field(default_factory=list)
    description: str = ""

    def signal(self, name):
        for signal in self.signals:
            if signal.name == name:
                return signal
        raise SpecError("unknown signal {!r}".format(name))

    def dataset(self, name):
        for dataset in self.data:
            if dataset.name == name:
                return dataset
        raise SpecError("unknown dataset {!r}".format(name))

    def signal_names(self):
        return [signal.name for signal in self.signals]

    def dataset_names(self):
        return [dataset.name for dataset in self.data]

    def interactive_signals(self):
        return [signal for signal in self.signals if signal.interactive]

    def mark_fields(self, dataset_name):
        """Fields of ``dataset_name`` consumed by any mark (plus scale
        domains) — drives projection pruning of the final transfer."""
        fields = set()
        for mark in self.marks:
            if mark.data == dataset_name:
                fields |= mark.fields()
        for scale in self.scales:
            domain = scale.domain
            if isinstance(domain, dict) and domain.get("data") == dataset_name:
                domain_field = domain.get("field")
                if isinstance(domain_field, str):
                    fields.add(domain_field)
                for item in domain.get("fields", []) or []:
                    if isinstance(item, str):
                        fields.add(item)
        return fields
