"""E9 (ablation) — cache coordination under interaction load.

The middleware "prefetches data in anticipation of the following
interactions and coordinates the cache" (§2).  This ablation sweeps the
client cache size during a long exploration session (drop-down cycling
across all four bin fields, several laps) and reports hit rate and mean
interaction latency — showing the working-set knee: once the cache holds
all field variants, interactions become free; below that, entries thrash.
"""

from conftest import print_header, print_rows, scaled

from repro.core import VegaPlus
from repro.datagen import generate_flights
from repro.interact import option_cycle, replay
from repro.spec import flights_histogram_spec

FIELDS = ["dep_delay", "arr_delay", "distance", "air_time"]


def test_e9_cache_sweep(benchmark):
    table = generate_flights(scaled(60_000))
    trace = option_cycle("binField", FIELDS, repeats=3)

    rows = []
    hit_rates = {}
    for cache_entries in (1, 2, 4, 8, 32):
        session = VegaPlus(
            flights_histogram_spec(), data={"flights": table},
            latency_ms=50, cache_entries=cache_entries,
        )
        session.startup()
        report = replay(session, trace, prefetch=False)
        hit_rates[cache_entries] = report.cache_hit_rate
        rows.append([
            cache_entries, report.interactions,
            "{:.0%}".format(report.cache_hit_rate),
            "{:.4f}".format(report.mean_latency),
        ])

    print_header("E9: cache-size sweep (binField cycling, 3 laps)")
    print_rows(["cache entries", "steps", "hit-rate", "mean latency(s)"],
               rows)
    print("\nshape: hit rate knees once the cache holds every field "
          "variant's queries; a 1-entry cache thrashes")

    assert hit_rates[32] > hit_rates[1]

    def replay_large_cache():
        session = VegaPlus(
            flights_histogram_spec(), data={"flights": table},
            latency_ms=50, cache_entries=32,
        )
        session.startup()
        return replay(session, trace, prefetch=False)

    benchmark.pedantic(replay_large_cache, rounds=3, iterations=1)
