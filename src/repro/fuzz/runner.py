"""Bounded fuzz campaigns: the loop behind ``python -m repro.fuzz``."""

from dataclasses import dataclass, field
from typing import List

from repro.fuzz.oracle import check_case
from repro.fuzz.reprofile import write_repro
from repro.fuzz.shrink import shrink_case
from repro.fuzz.specgen import generate_case

#: spreads campaign seeds so adjacent campaigns share no case seeds
_SEED_STRIDE = 100003


@dataclass
class Failure:
    case_seed: int
    repro_path: str
    summary: str


@dataclass
class CampaignResult:
    seed: int
    iterations: int
    cases_run: int = 0
    #: cases where every configuration raised the same way (acceptable)
    consistent_errors: int = 0
    failures: List[Failure] = field(default_factory=list)

    @property
    def ok(self):
        return not self.failures

    def describe(self):
        lines = [
            "fuzz campaign: seed={} iterations={}".format(
                self.seed, self.iterations),
            "cases run: {} ({} with consistent errors)".format(
                self.cases_run, self.consistent_errors),
        ]
        if self.failures:
            lines.append("FAILURES: {}".format(len(self.failures)))
            for failure in self.failures:
                lines.append("  seed {} -> {}".format(
                    failure.case_seed, failure.repro_path))
                for line in failure.summary.splitlines():
                    lines.append("    " + line)
        else:
            lines.append("OK: no mismatches")
        return "\n".join(lines)


def case_seed(campaign_seed, index):
    """The derived per-case seed: reproducible from (seed, index)."""
    return campaign_seed * _SEED_STRIDE + index


def run_campaign(seed, iterations, max_rows=40, include_inf=False,
                 shrink=True, out_dir=".", max_failures=5,
                 check_optimizer=True, log=None):
    """Run ``iterations`` generated cases; minimize and persist failures.

    Stops early once ``max_failures`` distinct failures were collected —
    by then the signal is a bug to fix, not more failures to pile up.
    """
    emit = log or (lambda message: None)
    result = CampaignResult(seed=seed, iterations=iterations)
    for index in range(iterations):
        current_seed = case_seed(seed, index)
        case = generate_case(current_seed, max_rows=max_rows,
                             include_inf=include_inf)
        report = check_case(case, check_optimizer=check_optimizer)
        result.cases_run += 1
        if report.notes and not report.runs:
            emit("case {}: {}".format(current_seed, "; ".join(report.notes)))
            continue
        if report.runs and all(
                run.status == "error" for run in report.runs):
            result.consistent_errors += 1
        if report.ok:
            emit("case {} ok ({})".format(current_seed, case.notes))
            continue

        emit("case {} FAILED: {} mismatches".format(
            current_seed, len(report.mismatches)))
        minimized = case
        if shrink:
            minimized, evals = shrink_case(case)
            emit("  minimized to {} rows / {} steps in {} evals".format(
                minimized.total_rows(), len(minimized.chain_types()),
                evals))
        final_report = check_case(minimized,
                                  check_optimizer=check_optimizer)
        if not final_report.mismatches:
            # Shrinking must never lose the bug; fall back to the
            # original case if the predicate went flaky.
            minimized, final_report = case, report
        path = write_repro(minimized, final_report, directory=out_dir)
        first_lines = [
            mismatch.describe().splitlines()[0]
            for mismatch in final_report.mismatches
        ]
        result.failures.append(Failure(
            case_seed=current_seed, repro_path=path,
            summary="\n".join(first_lines)))
        emit("  wrote {}".format(path))
        if len(result.failures) >= max_failures:
            emit("stopping early: {} failures collected".format(
                len(result.failures)))
            break
    return result
