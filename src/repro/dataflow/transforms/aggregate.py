"""Group-by aggregation transforms (Vega `aggregate` and `joinaggregate`)."""

import numpy as np

from repro.data import Column, ColumnBatch, SQLType
from repro.data.grouping import grouped_counts, grouped_minmax, grouped_sums
from repro.dataflow.transforms.aggops import (
    aggregate_op,
    default_output_name,
    group_rows,
)
from repro.dataflow.transforms.base import (
    Transform,
    TransformError,
    register_transform,
)
from repro.dataflow.vectorized import Unvectorizable


def _measures(params):
    """Normalize ops/fields/as into (op, field, output_name) triples."""
    ops = params.get("ops") or ["count"]
    fields = params.get("fields") or [None] * len(ops)
    names = params.get("as") or [None] * len(ops)
    if len(fields) != len(ops):
        raise TransformError("aggregate 'fields' must match 'ops' length")
    if len(names) < len(ops):
        names = list(names) + [None] * (len(ops) - len(names))
    triples = []
    for op, field, name in zip(ops, fields, names):
        if name is None:
            name = default_output_name(op, field)
        triples.append((op, field, name))
    return triples


def _apply_measures(rows, triples):
    out = {}
    for op, field, name in triples:
        fn = aggregate_op(op)
        if field is None:
            values = rows
        else:
            values = [row.get(field) for row in rows]
        out[name] = fn(values)
    return out


def _effective_valid(column):
    """Slots holding a real value for grouping/aggregation purposes: the
    validity mask, minus NaN for DOUBLE (``group_key`` folds NaN into
    None and ``_valid``/``_numbers`` drop it)."""
    if column.type is SQLType.DOUBLE:
        with np.errstate(invalid="ignore"):
            return column.valid & ~np.isnan(column.data)
    return column.valid


def _value_codes(batch, field):
    """(codes, cardinality, column) for one field: dense non-negative
    integer codes per distinct value, -1 for NULL."""
    count = batch.num_rows
    column = batch.columns.get(field)
    if column is None:
        return np.full(count, -1, dtype=np.int64), 0, None
    valid = _effective_valid(column)
    data = column.data
    if column.type is SQLType.DOUBLE:
        # neutralize masked slots so unique() never sees NaN
        data = np.where(valid, data, 0.0)
    elif column.type is SQLType.BOOLEAN:
        data = data.astype(np.int8)
    _, inverse = np.unique(data, return_inverse=True)
    codes = np.where(valid, inverse.astype(np.int64), -1)
    cardinality = int(inverse.max()) + 1 if count else 0
    return codes, cardinality, column


def _group_ids(batch, groupby):
    """First-seen-order group assignment over the groupby columns.

    Returns (gid, n_groups, first_rows): a group index per row, the group
    count, and the row index of each group's first member (in output
    order).  With no groupby there is a single global group — present
    even for an empty batch, matching the row path's one-row output.
    """
    count = batch.num_rows
    if not groupby:
        return (np.zeros(count, dtype=np.int64), 1,
                np.zeros(0, dtype=np.int64))
    combined = np.zeros(count, dtype=np.int64)
    for field in groupby:
        codes, cardinality, _ = _value_codes(batch, field)
        combined = combined * (cardinality + 1) + (codes + 1)
    uniq, first_idx, inverse = np.unique(
        combined, return_index=True, return_inverse=True)
    order = np.argsort(first_idx, kind="stable")
    rank = np.empty(len(uniq), dtype=np.int64)
    rank[order] = np.arange(len(uniq))
    return rank[inverse], len(uniq), first_idx[order]


def _key_column(batch, field, first_rows):
    """The output column for one groupby field: each group's key value,
    taken from its first row (NaN folded to NULL like ``group_key``)."""
    column = batch.columns.get(field)
    if column is None:
        return Column.nulls(SQLType.DOUBLE, len(first_rows))
    return Column(
        column.type, column.data, _effective_valid(column)).take(first_rows)


def _grouped_distinct(data, gid, n_groups, valid):
    """Per-group count of distinct valid values."""
    selected = np.flatnonzero(valid)
    if selected.size == 0:
        return np.zeros(n_groups, dtype=np.float64)
    _, codes = np.unique(data[selected], return_inverse=True)
    cardinality = int(codes.max()) + 1
    pairs = gid[selected].astype(np.int64) * cardinality + codes
    distinct_pairs = np.unique(pairs)
    return np.bincount(
        distinct_pairs // cardinality, minlength=n_groups
    ).astype(np.float64)


def _measure_column(batch, op, field, gid, n_groups, sizes):
    """One aggregate measure as an output column, replicating the
    semantics of the row-path ``op_*`` functions exactly."""
    if field is None:
        # the row path aggregates over the row dicts themselves; only
        # count is meaningful there
        if op != "count":
            raise Unvectorizable("field-less op {!r}".format(op))
        return Column(SQLType.DOUBLE, sizes)
    if op == "count":
        return Column(SQLType.DOUBLE, sizes)
    column = batch.columns.get(field)
    if column is None:
        valid = np.zeros(batch.num_rows, dtype=np.bool_)
        data = np.zeros(batch.num_rows, dtype=np.float64)
        sql_type = SQLType.DOUBLE
    else:
        valid = _effective_valid(column)
        data = column.data
        sql_type = column.type
    valid_counts = grouped_counts(gid, n_groups, valid)
    if op == "valid":
        return Column(SQLType.DOUBLE, valid_counts)
    if op == "missing":
        return Column(SQLType.DOUBLE, sizes - valid_counts)
    if op == "distinct":
        return Column(
            SQLType.DOUBLE, _grouped_distinct(data, gid, n_groups, valid))
    # numeric slots: _numbers() keeps numbers and booleans, drops strings
    if sql_type is SQLType.VARCHAR:
        numeric_valid = np.zeros(len(valid), dtype=np.bool_)
        numeric_data = np.zeros(len(valid), dtype=np.float64)
    else:
        numeric_valid = valid
        numeric_data = data.astype(np.float64) \
            if sql_type is SQLType.BOOLEAN else data
    if op == "sum":
        return Column(SQLType.DOUBLE,
                      grouped_sums(gid, n_groups, numeric_data, numeric_valid))
    if op in ("mean", "average"):
        counts = grouped_counts(gid, n_groups, numeric_valid)
        sums = grouped_sums(gid, n_groups, numeric_data, numeric_valid)
        present = counts > 0
        means = np.where(present, sums / np.maximum(counts, 1), 0.0)
        return Column(SQLType.DOUBLE, means, present)
    if op in ("min", "max"):
        if sql_type is SQLType.VARCHAR:
            # keep the row path's string comparison semantics
            raise Unvectorizable("string min/max")
        reducer = np.minimum if op == "min" else np.maximum
        if sql_type is SQLType.BOOLEAN:
            out_data, out_valid = grouped_minmax(
                data.astype(np.int8), gid, n_groups, valid, reducer)
            return Column(
                SQLType.BOOLEAN, out_data.astype(np.bool_), out_valid)
        out_data, out_valid = grouped_minmax(
            data, gid, n_groups, valid, reducer)
        return Column(SQLType.DOUBLE, out_data, out_valid)
    # variance/stdev/median/quantiles: fall back to the row path
    raise Unvectorizable("aggregate op {!r}".format(op))


@register_transform("aggregate")
class AggregateTransform(Transform):
    """Group rows and compute summary measures (Vega `aggregate`).

    ``cross=True`` is not supported (the demo scenarios do not use it);
    ``drop=False`` (keeping empty groups) requires `cross` and is likewise
    out of scope.
    """

    def transform(self, rows, params, signals):
        groupby = params.get("groupby") or []
        triples = _measures(params)
        order, groups = group_rows(rows, groupby)
        out = []
        for key in order:
            members = groups[key]
            result = dict(zip(groupby, key))
            result.update(_apply_measures(members, triples))
            out.append(result)
        if not groupby and not out:
            # Global aggregate over empty input still yields one row.
            out.append(_apply_measures([], triples))
        return out

    def transform_batch(self, batch, params, signals):
        groupby = params.get("groupby") or []
        triples = _measures(params)
        gid, n_groups, first_rows = _group_ids(batch, groupby)
        sizes = np.bincount(gid, minlength=n_groups).astype(np.float64)
        out = ColumnBatch()
        for field in groupby:
            out.set_column(field, _key_column(batch, field, first_rows))
        for op, field, name in triples:
            out.set_column(
                name, _measure_column(batch, op, field, gid, n_groups, sizes))
        return out


@register_transform("joinaggregate")
class JoinAggregateTransform(Transform):
    """Compute group measures and join them back onto each row."""

    def transform(self, rows, params, signals):
        groupby = params.get("groupby") or []
        triples = _measures(params)
        order, groups = group_rows(rows, groupby)
        measures = {
            key: _apply_measures(groups[key], triples) for key in order
        }
        out = []
        for row in rows:
            key = tuple(row.get(field) for field in groupby)
            derived = dict(row)
            derived.update(measures[key])
            out.append(derived)
        return out
