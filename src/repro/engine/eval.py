"""Vectorized evaluation of SQL scalar expressions over column frames.

A :class:`Frame` is the engine's intermediate row-batch representation:
an ordered list of (qualifier, name, Column) entries, allowing the same
column name to appear on both sides of a join until projection
disambiguates.  ``evaluate(expr, frame)`` returns a Column.

SQL three-valued logic is respected: comparisons over NULL produce NULL
(invalid) booleans; AND/OR follow Kleene logic; WHERE keeps only rows
whose predicate is valid *and* true.
"""

import numpy as np

from repro.engine import sqlast
from repro.engine.errors import ExecutionError, PlanError
from repro.engine.functions import like_match, regexp_match, scalar_function
from repro.engine.table import Column, Table
from repro.engine.types import SQLType


class Frame:
    """An ordered collection of possibly-qualified columns of equal length."""

    __slots__ = ("entries", "num_rows")

    def __init__(self, entries, num_rows=None):
        self.entries = list(entries)
        if num_rows is None:
            if not self.entries:
                raise ExecutionError("empty frame requires explicit num_rows")
            num_rows = len(self.entries[0][2])
        self.num_rows = num_rows

    @classmethod
    def from_table(cls, table, qualifier=None):
        entries = [
            (qualifier, name, column) for name, column in table.columns.items()
        ]
        return cls(entries, num_rows=table.num_rows)

    def resolve(self, name, qualifier=None):
        matches = [
            column
            for q, n, column in self.entries
            if n == name and (qualifier is None or q == qualifier)
        ]
        if not matches:
            raise PlanError(
                "unknown column {!r}{}".format(
                    name, " in " + qualifier if qualifier else ""
                )
            )
        if len(matches) > 1:
            raise PlanError("ambiguous column reference {!r}".format(name))
        return matches[0]

    def names(self):
        return [name for _, name, _ in self.entries]

    def to_table(self):
        """Collapse to a Table; duplicate names get positional suffixes."""
        table = Table()
        seen = {}
        for _, name, column in self.entries:
            if name in seen:
                seen[name] += 1
                name = "{}_{}".format(name, seen[name])
            else:
                seen[name] = 0
            table.add_column(name, column)
        if not self.entries:
            table._num_rows = self.num_rows
        return table

    def take(self, indices):
        entries = [
            (q, n, column.take(indices)) for q, n, column in self.entries
        ]
        return Frame(entries, num_rows=len(indices))

    def mask(self, keep):
        entries = [(q, n, column.mask(keep)) for q, n, column in self.entries]
        return Frame(entries, num_rows=int(np.count_nonzero(keep)))


_NUMERIC_OPS = {"+", "-", "*", "/", "%"}
_COMPARE_OPS = {"=", "<>", "<", ">", "<=", ">="}


def evaluate(expr, frame):
    """Evaluate a scalar SQL expression against a frame, returning a Column."""
    if isinstance(expr, sqlast.Literal):
        return Column.constant(expr.value, frame.num_rows)
    if isinstance(expr, sqlast.ColumnRef):
        return frame.resolve(expr.name, expr.table)
    if isinstance(expr, sqlast.UnaryOp):
        return _eval_unary(expr, frame)
    if isinstance(expr, sqlast.BinaryOp):
        return _eval_binary(expr, frame)
    if isinstance(expr, sqlast.IsNull):
        operand = evaluate(expr.operand, frame)
        data = operand.valid.copy() if expr.negated else ~operand.valid
        return Column(SQLType.BOOLEAN, data)
    if isinstance(expr, sqlast.InList):
        return _eval_in(expr, frame)
    if isinstance(expr, sqlast.Between):
        low = sqlast.BinaryOp(">=", expr.operand, expr.low)
        high = sqlast.BinaryOp("<=", expr.operand, expr.high)
        both = sqlast.BinaryOp("AND", low, high)
        result = evaluate(both, frame)
        if expr.negated:
            return _logical_not(result)
        return result
    if isinstance(expr, sqlast.FuncCall):
        return _eval_func(expr, frame)
    if isinstance(expr, sqlast.Case):
        return _eval_case(expr, frame)
    if isinstance(expr, sqlast.Cast):
        return _eval_cast(expr, frame)
    raise ExecutionError(
        "cannot evaluate {} in this context".format(type(expr).__name__)
    )


def predicate_mask(expr, frame):
    """Evaluate a WHERE/HAVING predicate to a keep-mask (NULL -> False)."""
    column = evaluate(expr, frame)
    if column.type is not SQLType.BOOLEAN:
        raise ExecutionError("predicate must be boolean")
    return column.data & column.valid


def _eval_unary(expr, frame):
    operand = evaluate(expr.operand, frame)
    if expr.op == "-":
        if operand.type is not SQLType.DOUBLE:
            raise ExecutionError("unary minus expects a numeric operand")
        return Column(SQLType.DOUBLE, -operand.data, operand.valid.copy())
    if expr.op.upper() == "NOT":
        return _logical_not(operand)
    raise ExecutionError("unknown unary operator {!r}".format(expr.op))


def _logical_not(column):
    if column.type is not SQLType.BOOLEAN:
        raise ExecutionError("NOT expects a boolean operand")
    return Column(SQLType.BOOLEAN, ~column.data, column.valid.copy())


def _eval_binary(expr, frame):
    op = expr.op.upper() if expr.op.isalpha() else expr.op
    if op == "AND":
        return _kleene_and(evaluate(expr.left, frame), evaluate(expr.right, frame))
    if op == "OR":
        return _kleene_or(evaluate(expr.left, frame), evaluate(expr.right, frame))
    left = evaluate(expr.left, frame)
    right = evaluate(expr.right, frame)
    if op == "||":
        return _concat(left, right)
    if op in _NUMERIC_OPS:
        return _arithmetic(op, left, right)
    if op in _COMPARE_OPS:
        return _comparison(op, left, right)
    if op == "LIKE":
        return _pattern(expr, left, right, like=True)
    if op == "REGEXP":
        return _pattern(expr, left, right, like=False)
    raise ExecutionError("unknown binary operator {!r}".format(expr.op))


def _kleene_and(left, right):
    _check_bool(left, "AND")
    _check_bool(right, "AND")
    false_left = left.valid & ~left.data
    false_right = right.valid & ~right.data
    data = left.data & right.data
    valid = (left.valid & right.valid) | false_left | false_right
    data = data & ~(false_left | false_right)
    return Column(SQLType.BOOLEAN, data, valid)


def _kleene_or(left, right):
    _check_bool(left, "OR")
    _check_bool(right, "OR")
    true_left = left.valid & left.data
    true_right = right.valid & right.data
    data = true_left | true_right
    valid = (left.valid & right.valid) | true_left | true_right
    return Column(SQLType.BOOLEAN, data, valid)


def _check_bool(column, what):
    if column.type is not SQLType.BOOLEAN:
        raise ExecutionError("{} expects boolean operands".format(what))


def _arithmetic(op, left, right):
    if left.type is not SQLType.DOUBLE or right.type is not SQLType.DOUBLE:
        raise ExecutionError(
            "arithmetic {!r} expects numeric operands ({} vs {})".format(
                op, left.type.value, right.type.value
            )
        )
    valid = left.valid & right.valid
    with np.errstate(all="ignore"):
        if op == "+":
            data = left.data + right.data
        elif op == "-":
            data = left.data - right.data
        elif op == "*":
            data = left.data * right.data
        elif op == "/":
            data = np.divide(left.data, right.data)
        else:
            data = np.fmod(left.data, right.data)
    bad = ~np.isfinite(data)
    if bad.any():
        valid = valid & ~bad  # division by zero -> NULL (SQL-flavoured)
        data = np.where(bad, 0.0, data)
    return Column(SQLType.DOUBLE, data, valid)


def _comparison(op, left, right):
    if left.type is not right.type:
        if {left.type, right.type} == {SQLType.DOUBLE, SQLType.BOOLEAN}:
            left, right = _promote_bool(left), _promote_bool(right)
        else:
            raise ExecutionError(
                "cannot compare {} with {}".format(
                    left.type.value, right.type.value
                )
            )
    valid = left.valid & right.valid
    ldata, rdata = left.data, right.data
    if op == "=":
        data = ldata == rdata
    elif op == "<>":
        data = ldata != rdata
    elif op == "<":
        data = ldata < rdata
    elif op == ">":
        data = ldata > rdata
    elif op == "<=":
        data = ldata <= rdata
    else:
        data = ldata >= rdata
    return Column(SQLType.BOOLEAN, np.asarray(data, dtype=np.bool_), valid)


def _promote_bool(column):
    if column.type is SQLType.BOOLEAN:
        return Column(
            SQLType.DOUBLE, column.data.astype(np.float64), column.valid.copy()
        )
    return column


def _concat(left, right):
    def as_text(column):
        if column.type is SQLType.VARCHAR:
            return column
        values = [
            _scalar_to_text(value) for value in column.data.tolist()
        ]
        return Column(
            SQLType.VARCHAR, np.array(values, dtype=object), column.valid.copy()
        )

    left, right = as_text(left), as_text(right)
    valid = left.valid & right.valid
    data = np.array(
        [l + r for l, r in zip(left.data, right.data)], dtype=object
    )
    return Column(SQLType.VARCHAR, data, valid)


def _scalar_to_text(value):
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _pattern(expr, left, right, like):
    if not isinstance(expr.right, sqlast.Literal) or not isinstance(
        expr.right.value, str
    ):
        raise ExecutionError(
            "{} pattern must be a string literal".format("LIKE" if like else "REGEXP")
        )
    if left.type is not SQLType.VARCHAR:
        raise ExecutionError("pattern match expects a VARCHAR operand")
    pattern = expr.right.value
    matcher = like_match if like else regexp_match
    data = matcher(left.data, left.valid, pattern)
    return Column(SQLType.BOOLEAN, data, left.valid.copy())


def _eval_in(expr, frame):
    operand = evaluate(expr.operand, frame)
    values = []
    for item in expr.items:
        if not isinstance(item, sqlast.Literal):
            raise ExecutionError("IN list items must be literals")
        if item.value is not None:
            values.append(item.value)
    if operand.type is SQLType.VARCHAR:
        allowed = set(values)
        data = np.fromiter(
            (value in allowed for value in operand.data),
            dtype=np.bool_,
            count=len(operand),
        )
    else:
        allowed = np.array([float(v) for v in values], dtype=np.float64)
        data = np.isin(operand.data, allowed)
    if expr.negated:
        data = ~data
    return Column(SQLType.BOOLEAN, data, operand.valid.copy())


def _eval_func(expr, frame):
    args = [evaluate(arg, frame) for arg in expr.args]
    fn = scalar_function(expr.name)
    return fn(*args)


def _eval_case(expr, frame):
    result_data = None
    result_valid = None
    result_type = None
    decided = np.zeros(frame.num_rows, dtype=np.bool_)
    for condition, branch in expr.whens:
        mask = predicate_mask(condition, frame) & ~decided
        branch_column = evaluate(branch, frame)
        if result_type is None:
            result_type = branch_column.type
            result_data = branch_column.data.copy()
            result_valid = np.zeros(frame.num_rows, dtype=np.bool_)
        elif branch_column.type is not result_type:
            raise ExecutionError("CASE branches must have a single type")
        result_data[mask] = branch_column.data[mask]
        result_valid[mask] = branch_column.valid[mask]
        decided |= mask
    remaining = ~decided
    if expr.default is not None and remaining.any():
        default_column = evaluate(expr.default, frame)
        if result_type is None:
            result_type = default_column.type
            result_data = default_column.data.copy()
            result_valid = default_column.valid.copy()
        else:
            if default_column.type is not result_type:
                # Allow NULL default of mismatched placeholder type.
                if default_column.null_count() == len(default_column):
                    default_column = Column.nulls(result_type, frame.num_rows)
                else:
                    raise ExecutionError("CASE branches must have a single type")
            result_data[remaining] = default_column.data[remaining]
            result_valid[remaining] = default_column.valid[remaining]
    if result_type is None:
        raise ExecutionError("CASE with no branches")
    return Column(result_type, result_data, result_valid)


def _eval_cast(expr, frame):
    operand = evaluate(expr.operand, frame)
    target = expr.type_name.upper()
    if target in ("DOUBLE", "FLOAT", "REAL", "INT", "INTEGER", "BIGINT"):
        if operand.type is SQLType.DOUBLE:
            data = operand.data.copy()
            valid = operand.valid.copy()
        elif operand.type is SQLType.BOOLEAN:
            data = operand.data.astype(np.float64)
            valid = operand.valid.copy()
        else:
            data = np.zeros(len(operand), dtype=np.float64)
            valid = operand.valid.copy()
            for index, (value, ok) in enumerate(zip(operand.data, operand.valid)):
                if not ok:
                    continue
                try:
                    data[index] = float(value)
                except ValueError:
                    valid[index] = False
        if target in ("INT", "INTEGER", "BIGINT"):
            data = np.trunc(data)
        return Column(SQLType.DOUBLE, data, valid)
    if target in ("VARCHAR", "TEXT", "STRING"):
        values = [_scalar_to_text(value) for value in operand.data.tolist()]
        return Column(
            SQLType.VARCHAR, np.array(values, dtype=object), operand.valid.copy()
        )
    if target in ("BOOLEAN", "BOOL"):
        if operand.type is SQLType.BOOLEAN:
            return operand
        if operand.type is SQLType.DOUBLE:
            return Column(
                SQLType.BOOLEAN, operand.data != 0.0, operand.valid.copy()
            )
    raise ExecutionError("unsupported CAST target {!r}".format(expr.type_name))
