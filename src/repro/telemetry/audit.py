"""Cost-model audit: predicted vs measured, after a traced session.

The partition optimizer chooses cuts from *estimated* per-operator and
per-transfer costs.  This module grades those estimates against what a
session actually measured: per client operator, per server segment, and
per network transfer it emits (predicted, measured, ratio) rows, and —
when candidate plans are re-executed — a rank correlation telling whether
the model at least orders plans correctly (ordering is all the optimizer
needs to pick the right cut).

The report feeds :func:`repro.planner.calibrate.refit_from_report`, which
scales the cost constants by the observed ratios.
"""

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.planner.cardinality import estimate_step, from_table_stats
from repro.planner.costmodel import CostModel
from repro.planner.partition import resolve_chain


@dataclass
class AuditEntry:
    """One predicted-vs-measured comparison."""

    name: str
    kind: str  # "client-op" | "server-segment" | "transfer"
    dataset: str
    predicted: float
    measured: float

    @property
    def ratio(self):
        """measured / predicted; None when the prediction is ~zero."""
        if self.predicted <= 1e-12:
            return None
        return self.measured / self.predicted

    def as_dict(self):
        return {
            "name": self.name,
            "kind": self.kind,
            "dataset": self.dataset,
            "predicted_s": self.predicted,
            "measured_s": self.measured,
            "ratio": self.ratio,
        }


@dataclass
class PlanCandidate:
    """One candidate plan's predicted vs measured total latency."""

    label: str
    predicted: float
    measured: float

    def as_dict(self):
        return {
            "plan": self.label,
            "predicted_s": self.predicted,
            "measured_s": self.measured,
        }


@dataclass
class MispredictionReport:
    """The audit outcome."""

    entries: List[AuditEntry] = field(default_factory=list)
    candidates: List[PlanCandidate] = field(default_factory=list)

    @property
    def rank_correlation(self):
        """Spearman correlation of predicted vs measured plan totals."""
        if len(self.candidates) < 2:
            return None
        return spearman(
            [candidate.predicted for candidate in self.candidates],
            [candidate.measured for candidate in self.candidates],
        )

    def ratios(self, kind=None):
        return [
            entry.ratio
            for entry in self.entries
            if entry.ratio is not None and (kind is None or entry.kind == kind)
        ]

    def median_ratio(self, kind=None):
        values = sorted(self.ratios(kind))
        if not values:
            return None
        middle = len(values) // 2
        if len(values) % 2:
            return values[middle]
        return 0.5 * (values[middle - 1] + values[middle])

    def worst(self, n=5):
        """Entries with the largest |log ratio| (most mispredicted)."""
        scored = [
            (abs(math.log(entry.ratio)), entry)
            for entry in self.entries
            if entry.ratio is not None and entry.ratio > 0
        ]
        scored.sort(key=lambda pair: -pair[0])
        return [entry for _, entry in scored[:n]]

    def as_dict(self):
        return {
            "entries": [entry.as_dict() for entry in self.entries],
            "candidates": [c.as_dict() for c in self.candidates],
            "rank_correlation": self.rank_correlation,
            "median_ratio": {
                "client-op": self.median_ratio("client-op"),
                "server-segment": self.median_ratio("server-segment"),
                "transfer": self.median_ratio("transfer"),
            },
        }

    def format(self):
        lines = [
            "cost-model misprediction report",
            "{:<34} {:<15} {:>12} {:>12} {:>8}".format(
                "operator", "kind", "predicted", "measured", "ratio"
            ),
        ]
        lines.append("-" * len(lines[-1]))
        for entry in self.entries:
            ratio = entry.ratio
            lines.append(
                "{:<34} {:<15} {:>11.6f}s {:>11.6f}s {:>8}".format(
                    entry.name[:34], entry.kind, entry.predicted,
                    entry.measured,
                    "{:.2f}x".format(ratio) if ratio is not None else "-",
                )
            )
        if self.candidates:
            lines.append("")
            lines.append("candidate plans (predicted vs measured total):")
            for candidate in self.candidates:
                lines.append(
                    "  {:<28} predicted {:>9.4f}s  measured {:>9.4f}s".format(
                        candidate.label[:28], candidate.predicted,
                        candidate.measured,
                    )
                )
            correlation = self.rank_correlation
            if correlation is not None:
                lines.append(
                    "  rank correlation (Spearman): {:.3f}".format(correlation)
                )
        return "\n".join(lines)


def spearman(xs, ys):
    """Spearman rank correlation with average ranks for ties."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need two equal-length sequences of >= 2 values")
    rx = _average_ranks(xs)
    ry = _average_ranks(ys)
    mean_x = sum(rx) / len(rx)
    mean_y = sum(ry) / len(ry)
    cov = sum((a - mean_x) * (b - mean_y) for a, b in zip(rx, ry))
    var_x = sum((a - mean_x) ** 2 for a in rx)
    var_y = sum((b - mean_y) ** 2 for b in ry)
    if var_x <= 0 or var_y <= 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def _average_ranks(values):
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and \
                values[order[j + 1]] == values[order[i]]:
            j += 1
        average = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = average
        i = j + 1
    return ranks


def audit_session(session, result=None, run_candidates=True,
                  max_candidates=8):
    """Build a :class:`MispredictionReport` for a session.

    ``result`` is the run to grade (default: the session's last result).
    With ``run_candidates=True`` the audit also re-executes up to
    ``max_candidates`` alternative cuts (cache cleared before each) to
    measure how well the model *ranks* plans.
    """
    if session.plan is None:
        raise ValueError("session has no plan; call startup() first")
    result = result or session.last_result()
    if result is None:
        raise ValueError("session has no executed result to audit")

    report = MispredictionReport()
    model = CostModel(session.channel, session.cost_params)

    for sink, dataset_plan in (result.plan or session.plan).datasets.items():
        root, steps = resolve_chain(session.compiled, sink)
        estimates = [from_table_stats(session.table_stats[root])]
        current = estimates[0]
        for step in steps:
            current = estimate_step(
                current, step.spec_type, step.params, signals=session.signals
            )
            estimates.append(current)
        cut = dataset_plan.cut

        # Client operators: the suffix ran in the reactive dataflow and
        # recorded wall time per operator.
        for index in range(cut, len(steps)):
            step = steps[index]
            measured = result.client_op_seconds.get(step.operator.name)
            if measured is None:
                continue
            predicted = model.client_step_cost(
                step.spec_type, estimates[index].rows
            )
            report.entries.append(
                AuditEntry(
                    name=step.operator.name, kind="client-op", dataset=sink,
                    predicted=predicted, measured=measured,
                )
            )

        # Server segment: predicted per-step costs plus query overhead vs
        # the backend's measured wall time for this sink's queries.
        sink_queries = [
            entry for entry in result.queries
            if entry.dataset in (sink, "") and not entry.cached
        ]
        if cut > 0 and sink_queries:
            predicted_server = model.params.server_query_overhead * len(
                sink_queries
            )
            for index in range(cut):
                predicted_server += model.server_step_cost(
                    steps[index].spec_type, estimates[index].rows
                )
            measured_server = sum(
                entry.server_seconds for entry in sink_queries
            )
            report.entries.append(
                AuditEntry(
                    name="{}[0:{}]".format(sink, cut), kind="server-segment",
                    dataset=sink, predicted=predicted_server,
                    measured=measured_server,
                )
            )

        # The cut transfer: estimated network seconds vs the channel's
        # accounted virtual time for this sink's round trips.
        measured_network = sum(
            entry.network_seconds for entry in result.queries
            if entry.dataset in (sink, "")
        )
        if measured_network > 0:
            report.entries.append(
                AuditEntry(
                    name="{}@cut={}".format(sink, cut), kind="transfer",
                    dataset=sink,
                    predicted=dataset_plan.estimate.network,
                    measured=measured_network,
                )
            )

    if run_candidates:
        _measure_candidates(session, report, max_candidates)
    return report


def _measure_candidates(session, report, max_candidates):
    """Re-run alternative cuts of the first sink and record totals."""
    sinks = list(session.plan.datasets)
    if not sinks:
        return
    sink = sinks[0]
    max_cut = session.plan.datasets[sink].max_cut
    cuts = list(range(max_cut + 1))[:max_candidates]
    for cut in cuts:
        plan = session.custom_plan({sink: cut}, label="audit:cut={}".format(cut))
        session.cache.clear()
        measured = session.run_with_plan(plan)
        report.candidates.append(
            PlanCandidate(
                label=plan.label,
                predicted=plan.estimate.total,
                measured=measured.breakdown.total,
            )
        )
