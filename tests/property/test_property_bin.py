"""Property tests pinning BinTransform / bin_params / bin_index edges.

The tile subsystem leans on exact bin arithmetic: the brush grid is
``bin_params(extent, maxbins=TILE_RESOLUTION, nice=True)`` widened by one
step, and cube ingestion asserts every server-binned value lands exactly
on a grid edge.  These properties pin the contract both paths rely on:
top-edge clamping, zero-width extents, NaN/NULL/string inputs, nice-step
snapping, and row-vs-batch identity down to the last IEEE bit.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import ColumnBatch
from repro.dataflow.transforms import create_transform
from repro.dataflow.transforms.bin import bin_index, bin_params

_FINITE = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
_SPANS = st.floats(min_value=1e-3, max_value=1e6, allow_nan=False)

_PARAMS = {"field": "v", "extent": [0.0, 100.0], "maxbins": 10,
           "as": ["bin0", "bin1"]}


def _run_rows(rows, params=_PARAMS):
    transform = create_transform("bin", "t", params, None)
    return transform.transform(rows, params, {})


def _run_batch(rows, params=_PARAMS):
    transform = create_transform("bin", "t", params, None)
    out = transform.transform_batch(ColumnBatch.from_rows(rows), params, {})
    return out.to_rows()


class TestBinParams:
    @given(_FINITE, _SPANS, st.integers(min_value=1, max_value=200))
    @settings(max_examples=200)
    def test_nice_step_is_1_2_5_times_power_of_ten(self, lo, span,
                                                   maxbins):
        _start, _stop, step = bin_params([lo, lo + span],
                                         maxbins=maxbins, nice=True)
        mantissa = step / 10.0 ** math.floor(math.log10(step))
        assert min(abs(mantissa - m) for m in (1.0, 2.0, 5.0, 10.0)) \
            < 1e-9

    @given(_FINITE, _SPANS, st.integers(min_value=1, max_value=200))
    @settings(max_examples=200)
    def test_nice_bounds_cover_the_extent_on_step_multiples(
            self, lo, span, maxbins):
        hi = lo + span
        start, stop, step = bin_params([lo, hi], maxbins=maxbins,
                                       nice=True)
        # coverage is ulp-approximate: floor(lo/step) can land one ulp
        # high when lo/step rounds up to an integer (e.g. 0.95/0.01)
        slack = 1e-9 * max(1.0, abs(lo), abs(hi))
        assert start <= lo + slack and stop >= hi - slack
        # niced bounds sit on integer multiples of the step (up to
        # round-off in start/step when the multiple is huge)
        for bound in (start, stop):
            k = bound / step
            assert abs(k - round(k)) < 1e-9 * max(1.0, abs(k))

    @given(_FINITE)
    @settings(max_examples=100)
    def test_zero_width_extent_widens_to_one_unit(self, lo):
        start, stop, step = bin_params([lo, lo], maxbins=10)
        assert stop > start
        assert step > 0
        # the widened span is [lo, lo + 1] before nicing
        assert start <= lo and stop >= lo + 1.0

    @given(_FINITE, _SPANS)
    @settings(max_examples=200)
    def test_bin_index_floors_onto_the_lattice(self, lo, span):
        start, stop, step = bin_params([lo, lo + span], maxbins=17)
        value = lo + span / 2
        bucket = bin_index(value, start, step)
        assert bucket <= value or math.isclose(bucket, value)
        # the bucket start is start + k*step for an integer k
        k = (bucket - start) / step
        assert abs(k - round(k)) < 1e-6


class TestBinTransformEdges:
    def test_top_edge_clamps_into_last_bin(self):
        rows = _run_rows([{"v": 100.0}])
        assert rows[0]["bin0"] == 90.0
        assert rows[0]["bin1"] == 100.0

    def test_value_just_below_top_edge(self):
        rows = _run_rows([{"v": 99.999}])
        assert rows[0]["bin0"] == 90.0

    def test_nan_null_and_string_inputs_get_null_bins(self):
        rows = _run_rows([{"v": float("nan")}, {"v": None}, {"v": "x"}])
        for row in rows:
            assert row["bin0"] is None
            assert row["bin1"] is None

    def test_null_extent_nulls_every_bin(self):
        params = dict(_PARAMS, extent=[None, None])
        rows = _run_rows([{"v": 5.0}, {"v": None}], params)
        assert all(row["bin0"] is None for row in rows)

    @given(st.lists(
        st.one_of(st.none(),
                  st.floats(min_value=-50.0, max_value=150.0,
                            allow_nan=False)),
        max_size=30))
    @settings(max_examples=200)
    def test_row_and_batch_paths_agree_bit_for_bit(self, values):
        rows = [{"v": value} for value in values]
        from_rows = _run_rows(rows)
        from_batch = _run_batch(rows)
        assert len(from_rows) == len(from_batch)
        for a, b in zip(from_rows, from_batch):
            # exact equality: both paths must use the same IEEE ops,
            # or server-built tiles drift off the client's grid
            assert a["bin0"] == b["bin0"], (a, b)
            assert a["bin1"] == b["bin1"], (a, b)

    @given(st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
    @settings(max_examples=200)
    def test_every_in_extent_value_lands_in_a_half_open_bin(self, value):
        row = _run_rows([{"v": value}])[0]
        assert row["bin0"] is not None
        assert row["bin0"] <= value <= row["bin1"]
        if value < 100.0:
            assert value < row["bin1"] or row["bin1"] == 100.0
