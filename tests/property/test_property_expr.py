"""Property-based tests (hypothesis) for the expression language."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr import ast
from repro.expr.constfold import fold
from repro.expr.evaluator import Evaluator, evaluate
from repro.expr.parser import parse

_NUMBERS = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)

_evaluator = Evaluator(signals={})


@st.composite
def arithmetic_exprs(draw, depth=0):
    """Random arithmetic expression ASTs over literals and datum.x."""
    if depth >= 3 or draw(st.booleans()):
        if draw(st.booleans()):
            return ast.Literal(draw(_NUMBERS))
        return ast.Member(
            ast.Identifier("datum"), ast.Literal("x"), computed=False
        )
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(arithmetic_exprs(depth=depth + 1))
    right = draw(arithmetic_exprs(depth=depth + 1))
    return ast.Binary(op, left, right)


def render(node):
    """Render an AST back to expression source text."""
    if isinstance(node, ast.Literal):
        value = node.value
        if isinstance(value, float) and value < 0:
            return "({!r})".format(value)
        return repr(value)
    if isinstance(node, ast.Member):
        return "datum.x"
    if isinstance(node, ast.Binary):
        return "({} {} {})".format(
            render(node.left), node.op, render(node.right)
        )
    raise AssertionError("unexpected node")


class TestParserProperties:
    @given(arithmetic_exprs())
    @settings(max_examples=200)
    def test_render_parse_round_trip(self, node):
        """Rendering then re-parsing preserves evaluation."""
        source = render(node)
        reparsed = parse(source)
        datum = {"x": 3.5}
        assert _close(
            _evaluator.evaluate(node, datum),
            _evaluator.evaluate(reparsed, datum),
        )

    @given(_NUMBERS)
    def test_number_literals_round_trip(self, value):
        assert evaluate(repr(value)) == value


class TestFoldingProperties:
    @given(arithmetic_exprs(), _NUMBERS)
    @settings(max_examples=200)
    def test_folding_preserves_value(self, node, x):
        datum = {"x": x}
        original = _evaluator.evaluate(node, datum)
        folded = fold(node)
        result = _evaluator.evaluate(folded, datum)
        assert _close(original, result)

    @given(arithmetic_exprs())
    @settings(max_examples=100)
    def test_folding_idempotent(self, node):
        once = fold(node)
        twice = fold(once)
        assert once == twice


class TestEvaluatorProperties:
    @given(_NUMBERS, _NUMBERS)
    def test_comparison_trichotomy(self, a, b):
        lt = evaluate("a < b", signals={"a": a, "b": b})
        gt = evaluate("a > b", signals={"a": a, "b": b})
        eq = evaluate("a == b", signals={"a": a, "b": b})
        assert sum([lt, gt, eq]) == 1

    @given(_NUMBERS)
    def test_abs_non_negative(self, x):
        assert evaluate("abs(v)", signals={"v": x}) >= 0

    @given(_NUMBERS, _NUMBERS, _NUMBERS)
    def test_clamp_within_bounds(self, v, lo, hi):
        result = evaluate(
            "clamp(v, lo, hi)", signals={"v": v, "lo": lo, "hi": hi}
        )
        low, high = min(lo, hi), max(lo, hi)
        assert low <= result <= high

    @given(st.lists(_NUMBERS, min_size=1))
    def test_extent_bounds_all_values(self, values):
        result = evaluate("extent(vs)", signals={"vs": values})
        assert result[0] <= min(values) + 1e-9
        assert result[1] >= max(values) - 1e-9

    @given(st.text(max_size=30))
    def test_upper_lower_round_trip_length(self, text):
        upper = evaluate("upper(s)", signals={"s": text})
        assert len(upper) >= 0  # never raises
        assert upper == text.upper()


def _close(a, b):
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
    return a == b
