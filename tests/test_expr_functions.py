"""Coverage for the long tail of the Vega expression function library."""

import math

import pytest

from repro.expr.errors import ExprEvalError
from repro.expr.evaluator import evaluate


class TestStringFunctions:
    def test_truncate_right(self):
        assert evaluate("truncate('hello world', 8)") == "hello w…"

    def test_truncate_left(self):
        assert evaluate("truncate('hello world', 8, 'left')") == "…o world"

    def test_truncate_center(self):
        result = evaluate("truncate('hello world', 7, 'center')")
        assert len(result) == 7 and "…" in result

    def test_truncate_no_op_when_short(self):
        assert evaluate("truncate('hi', 10)") == "hi"

    def test_pad_center(self):
        assert evaluate("pad('x', 5, '-', 'center')") == "--x--"

    def test_replace_first_occurrence_only(self):
        assert evaluate("replace('aaa', 'a', 'b')") == "baa"

    def test_split(self):
        assert evaluate("split('a,b,c', ',')") == ["a", "b", "c"]

    def test_slice_string(self):
        assert evaluate("slice('hello', 1, 3)") == "el"

    def test_slice_negative(self):
        assert evaluate("slice('hello', -2)") == "lo"

    def test_slice_array(self):
        assert evaluate("slice(xs, 1)", signals={"xs": [1, 2, 3]}) == [2, 3]

    def test_lastindexof(self):
        assert evaluate("lastindexof('abcabc', 'b')") == 4.0

    def test_indexof_array(self):
        assert evaluate("indexof(xs, 20)", signals={"xs": [10, 20]}) == 1.0

    def test_indexof_missing(self):
        assert evaluate("indexof('abc', 'z')") == -1.0

    def test_parse_functions(self):
        assert evaluate("parseFloat('2.5')") == 2.5
        assert evaluate("parseInt('42')") == 42.0


class TestMathFunctions:
    def test_trig(self):
        assert abs(evaluate("sin(PI / 2)") - 1.0) < 1e-12
        assert abs(evaluate("cos(0)") - 1.0) < 1e-12
        assert abs(evaluate("atan2(1, 1)") - math.pi / 4) < 1e-12

    def test_inverse_trig(self):
        assert abs(evaluate("asin(1)") - math.pi / 2) < 1e-12
        assert abs(evaluate("acos(1)")) < 1e-12
        assert abs(evaluate("atan(1)") - math.pi / 4) < 1e-12

    def test_cbrt_negative(self):
        assert abs(evaluate("cbrt(-8)") + 2.0) < 1e-12

    def test_hypot(self):
        assert evaluate("hypot(3, 4)") == 5.0

    def test_log_bases(self):
        assert evaluate("log2(8)") == 3.0
        assert evaluate("log10(1000)") == 3.0

    def test_sign(self):
        assert evaluate("sign(-5)") == -1.0
        assert evaluate("sign(5)") == 1.0
        assert evaluate("sign(0)") == 0.0

    def test_trunc(self):
        assert evaluate("trunc(1.9)") == 1.0
        assert evaluate("trunc(-1.9)") == -1.0

    def test_exp(self):
        assert abs(evaluate("exp(1)") - math.e) < 1e-12

    def test_constants(self):
        assert evaluate("E") == math.e
        assert evaluate("SQRT2") == math.sqrt(2)
        assert evaluate("LN10") == math.log(10)
        assert math.isinf(evaluate("Infinity"))
        assert evaluate("undefined") is None


class TestArrayFunctions:
    def test_peek(self):
        assert evaluate("peek(xs)", signals={"xs": [1, 2, 3]}) == 3

    def test_peek_empty(self):
        assert evaluate("peek(xs)", signals={"xs": []}) is None

    def test_join(self):
        assert evaluate("join(xs, '-')", signals={"xs": [1, 2]}) == "1-2"

    def test_reverse_does_not_mutate(self):
        xs = [1, 2, 3]
        assert evaluate("reverse(xs)", signals={"xs": xs}) == [3, 2, 1]
        assert xs == [1, 2, 3]

    def test_sort_numeric(self):
        assert evaluate("sort(xs)", signals={"xs": [3, 1, 2]}) == [1, 2, 3]

    def test_sequence_negative_step(self):
        assert evaluate("sequence(3, 0, -1)") == [3.0, 2.0, 1.0]

    def test_sequence_zero_step_rejected(self):
        with pytest.raises(ExprEvalError):
            evaluate("sequence(0, 5, 0)")

    def test_extent_all_null(self):
        assert evaluate("extent(xs)", signals={"xs": [None]}) == [None, None]

    def test_inrange_reversed_bounds(self):
        assert evaluate("inrange(5, [10, 0])") is True


class TestDateFunctions:
    def test_day_of_week(self):
        # 2021-01-04 was a Monday -> JS getDay() == 1.
        assert evaluate("day(datetime(2021, 0, 4))") == 1.0

    def test_dayofyear(self):
        assert evaluate("dayofyear(datetime(2021, 1, 1))") == 32.0

    def test_time_components(self):
        value = "hours(datetime(2021, 0, 1, 13, 45, 30))"
        assert evaluate(value) == 13.0
        value = "minutes(datetime(2021, 0, 1, 13, 45, 30))"
        assert evaluate(value) == 45.0
        value = "seconds(datetime(2021, 0, 1, 13, 45, 30))"
        assert evaluate(value) == 30.0

    def test_time_round_trips_through_ms(self):
        ms = evaluate("time(datetime(2020, 5, 15))")
        assert evaluate("year({})".format(ms)) == 2020.0

    def test_datetime_requires_args(self):
        with pytest.raises(ExprEvalError):
            evaluate("datetime()")

    def test_invalid_date_input(self):
        with pytest.raises(ExprEvalError):
            evaluate("year('not a date')")


class TestCoercionEdgeCases:
    def test_to_number_of_spaces(self):
        assert evaluate("toNumber('  ')") == 0.0

    def test_to_number_garbage_is_nan(self):
        assert math.isnan(evaluate("toNumber('abc')"))

    def test_to_string_of_array(self):
        assert evaluate("toString(xs)", signals={"xs": [1, 2]}) == "1,2"

    def test_to_string_of_bool(self):
        assert evaluate("toString(true)") == "true"

    def test_null_string(self):
        assert evaluate("toString(null)") == "null"

    def test_isfinite(self):
        assert evaluate("isFinite(1)") is True
        assert evaluate("isFinite(1 / 0)") is False

    def test_isdate(self):
        assert evaluate("isDate(datetime(2020, 0, 1))") is True
        assert evaluate("isDate(5)") is False

    def test_length_of_non_sized_is_nan(self):
        assert math.isnan(evaluate("length(5)"))
