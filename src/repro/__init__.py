"""VegaPlus reproduction.

Reproduces "Demonstration of VegaPlus: Optimizing Declarative Visualization
Languages" (SIGMOD '22 demo): a middleware that compiles Vega
specifications to a reactive dataflow, translates transforms to SQL, and
partitions execution between a simulated browser client and a backing DBMS.

Public entry points::

    from repro import VegaPlus
    session = VegaPlus(spec, backend="embedded")
    result = session.run()

See ``examples/quickstart.py`` for a complete walkthrough.
"""

__version__ = "0.1.0"

__all__ = ["VegaPlus", "__version__"]


def __getattr__(name):
    # Lazy import keeps subpackages usable independently and avoids import
    # cycles between the session facade and its substrates.
    if name == "VegaPlus":
        from repro.core.session import VegaPlus

        return VegaPlus
    raise AttributeError("module 'repro' has no attribute {!r}".format(name))
