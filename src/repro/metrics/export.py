"""Metric exporters: Prometheus text exposition and JSON snapshots.

:func:`render_prometheus` emits the text exposition format (version
0.0.4) a Prometheus scraper ingests: ``# HELP`` / ``# TYPE`` headers,
one sample line per labeled child, histograms as cumulative ``_bucket``
series with ``le`` labels plus ``_sum``/``_count``.  Dotted internal
names sanitize to underscores and counters gain the ``_total`` suffix
convention.  The slow-query log exports as its own small families so a
fleet monitor can alert on ``slowlog_recorded_total`` without parsing
JSONL.

:func:`write_snapshot` persists the registry's full snapshot (including
windowed p50/p95/p99 summaries, which the exposition format has no slot
for) as JSON; ``python -m repro.metrics`` renders either live registries
or these files.
"""

import json
import re

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_OK = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_metric_name(name):
    """A legal Prometheus metric name from a dotted internal name."""
    out = _NAME_OK.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def sanitize_label_name(name):
    out = _LABEL_OK.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def escape_label_value(value):
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def format_value(value):
    if value is None:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def _label_body(labels, extra=None):
    items = sorted(labels.items())
    if extra:
        items = items + list(extra)
    if not items:
        return ""
    return "{" + ",".join(
        '{}="{}"'.format(sanitize_label_name(key), escape_label_value(value))
        for key, value in items
    ) + "}"


def _snapshot_of(registry_or_snapshot):
    if hasattr(registry_or_snapshot, "snapshot"):
        return registry_or_snapshot.snapshot()
    return registry_or_snapshot


def render_prometheus(registry, prefix="repro_"):
    """The registry (or a snapshot dict) as Prometheus text exposition."""
    snapshot = _snapshot_of(registry)
    lines = []

    for name, family in sorted(snapshot.get("families", {}).items()):
        kind = family["kind"]
        exposed = prefix + sanitize_metric_name(name)
        if kind == "counter" and not exposed.endswith("_total"):
            exposed += "_total"
        help_text = family.get("help") or name
        lines.append("# HELP {} {}".format(exposed, help_text))
        lines.append("# TYPE {} {}".format(
            exposed, "histogram" if kind == "histogram" else kind
        ))
        for child in family["children"]:
            labels = child["labels"]
            if kind in ("counter", "gauge"):
                lines.append("{}{} {}".format(
                    exposed, _label_body(labels), format_value(child["value"])
                ))
                continue
            # Histogram: cumulative buckets, then sum and count.
            cumulative = 0
            for bound, count in zip(child["bounds"],
                                    child["bucket_counts"]):
                cumulative += count
                lines.append("{}_bucket{} {}".format(
                    exposed,
                    _label_body(labels, [("le", "{:g}".format(bound))]),
                    cumulative,
                ))
            cumulative += child["bucket_counts"][-1]
            lines.append("{}_bucket{} {}".format(
                exposed, _label_body(labels, [("le", "+Inf")]), cumulative
            ))
            lines.append("{}_sum{} {}".format(
                exposed, _label_body(labels), format_value(child["sum"])
            ))
            lines.append("{}_count{} {}".format(
                exposed, _label_body(labels), child["count"]
            ))

    slowlog = snapshot.get("slowlog") or {}
    if slowlog:
        for suffix, kind, key, help_text in (
            ("slowlog_recorded_total", "counter", "recorded",
             "slow queries admitted to the ring"),
            ("slowlog_dropped_total", "counter", "dropped",
             "slow-query records discarded oldest-first under capacity"),
            ("slowlog_entries", "gauge", "entries",
             "slow-query records currently resident"),
        ):
            exposed = prefix + suffix
            lines.append("# HELP {} {}".format(exposed, help_text))
            lines.append("# TYPE {} {}".format(exposed, kind))
            lines.append("{} {}".format(
                exposed, format_value(slowlog.get(key) or 0)
            ))

    return "\n".join(lines) + "\n"


def snapshot_json(registry):
    """The registry snapshot as a JSON string."""
    return json.dumps(_snapshot_of(registry), indent=2, sort_keys=True)


def write_snapshot(registry, path):
    """Persist the JSON snapshot to ``path``; returns the path."""
    with open(path, "w") as handle:
        handle.write(snapshot_json(registry))
        handle.write("\n")
    return path
