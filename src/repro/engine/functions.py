"""Scalar and aggregate function implementations for the embedded engine.

Scalar functions are vectorized: they take and return
:class:`~repro.engine.table.Column` objects.  Aggregate functions take a
Column (already restricted to one group) and return a Python scalar or
None.
"""

import math
import re
from datetime import datetime, timezone

import numpy as np

from repro.engine.errors import ExecutionError
from repro.engine.table import Column
from repro.engine.types import SQLType


# --------------------------------------------------------------------------
# Scalar helpers
# --------------------------------------------------------------------------


def _require_double(column, func_name):
    if column.type is not SQLType.DOUBLE:
        raise ExecutionError(
            "{}() expects a numeric argument, got {}".format(
                func_name, column.type.value
            )
        )
    return column


def _unary_math(func_name, op, domain=None):
    """Build a scalar function applying ``op`` elementwise with NULL
    propagation; out-of-domain inputs yield NULL (SQL-friendly NaN
    avoidance)."""

    def impl(column):
        _require_double(column, func_name)
        valid = column.valid.copy()
        data = column.data
        if domain is not None:
            in_domain = domain(data)
            valid &= in_domain
            data = np.where(in_domain, data, 1.0)
        with np.errstate(all="ignore"):
            result = op(data)
        bad = ~np.isfinite(result)
        if bad.any():
            valid &= ~bad
            result = np.where(bad, 0.0, result)
        return Column(SQLType.DOUBLE, result, valid)

    return impl


def _sql_round(column, digits=None):
    _require_double(column, "ROUND")
    if digits is None:
        # Match JS/Vega round-half-up (the translation source semantics).
        result = np.floor(column.data + 0.5)
    else:
        scale = 10.0 ** float(digits.data[0])
        result = np.floor(column.data * scale + 0.5) / scale
    return Column(SQLType.DOUBLE, result, column.valid.copy())


def _binary_numeric(func_name, op):
    def impl(left, right):
        _require_double(left, func_name)
        _require_double(right, func_name)
        valid = left.valid & right.valid
        with np.errstate(all="ignore"):
            result = op(left.data, right.data)
        bad = ~np.isfinite(result)
        if bad.any():
            valid &= ~bad
            result = np.where(bad, 0.0, result)
        return Column(SQLType.DOUBLE, result, valid)

    return impl


def _least(*columns):
    return _extreme(columns, np.minimum, "LEAST")


def _greatest(*columns):
    return _extreme(columns, np.maximum, "GREATEST")


def _extreme(columns, op, func_name):
    if not columns:
        raise ExecutionError("{} needs at least one argument".format(func_name))
    for column in columns:
        _require_double(column, func_name)
    result = columns[0].data.copy()
    valid = columns[0].valid.copy()
    for column in columns[1:]:
        result = op(result, column.data)
        valid &= column.valid
    return Column(SQLType.DOUBLE, result, valid)


def _string_func(func_name, op):
    def impl(column):
        if column.type is not SQLType.VARCHAR:
            raise ExecutionError(
                "{}() expects VARCHAR, got {}".format(func_name, column.type.value)
            )
        result = np.array([op(value) for value in column.data], dtype=object)
        return Column(SQLType.VARCHAR, result, column.valid.copy())

    return impl


def _length(column):
    if column.type is not SQLType.VARCHAR:
        raise ExecutionError("LENGTH() expects VARCHAR")
    result = np.array([float(len(value)) for value in column.data])
    return Column(SQLType.DOUBLE, result, column.valid.copy())


def _strpos(haystack, needle):
    if haystack.type is not SQLType.VARCHAR or needle.type is not SQLType.VARCHAR:
        raise ExecutionError("STRPOS() expects VARCHAR arguments")
    result = np.array(
        [float(h.find(n) + 1) for h, n in zip(haystack.data, needle.data)]
    )
    return Column(SQLType.DOUBLE, result, haystack.valid & needle.valid)


def _substr(column, start, length=None):
    if column.type is not SQLType.VARCHAR:
        raise ExecutionError("SUBSTR() expects VARCHAR")
    starts = start.data.astype(np.int64)
    if length is None:
        values = [value[max(0, s - 1):] for value, s in zip(column.data, starts)]
        valid = column.valid & start.valid
    else:
        lengths = length.data.astype(np.int64)
        values = [
            value[max(0, s - 1): max(0, s - 1) + max(0, ln)]
            for value, s, ln in zip(column.data, starts, lengths)
        ]
        valid = column.valid & start.valid & length.valid
    return Column(SQLType.VARCHAR, np.array(values, dtype=object), valid)


def _coalesce(*columns):
    if not columns:
        raise ExecutionError("COALESCE needs at least one argument")
    result_type = columns[0].type
    data = columns[0].data.copy()
    valid = columns[0].valid.copy()
    for column in columns[1:]:
        fill = ~valid & column.valid
        if fill.any():
            data[fill] = column.data[fill]
            valid |= fill
    return Column(result_type, data, valid)


def _nullif(left, right):
    equal = left.valid & right.valid & (left.data == right.data)
    valid = left.valid & ~equal
    return Column(left.type, left.data.copy(), valid)


# Dates: epoch milliseconds stored in DOUBLE columns.  Conversions go
# through datetime in UTC so the same values round-trip across backends.


def _date_component(func_name, getter):
    def impl(column):
        _require_double(column, func_name)
        values = np.zeros(len(column), dtype=np.float64)
        for index, (ms, ok) in enumerate(zip(column.data, column.valid)):
            if ok:
                dt = datetime.fromtimestamp(ms / 1000.0, tz=timezone.utc)
                values[index] = getter(dt)
        return Column(SQLType.DOUBLE, values, column.valid.copy())

    return impl


_SCALAR_FUNCTIONS = {
    "ABS": _unary_math("ABS", np.abs),
    "CEIL": _unary_math("CEIL", np.ceil),
    "CEILING": _unary_math("CEILING", np.ceil),
    "FLOOR": _unary_math("FLOOR", np.floor),
    "ROUND": _sql_round,
    "SQRT": _unary_math("SQRT", np.sqrt, domain=lambda x: x >= 0),
    "EXP": _unary_math("EXP", np.exp),
    "LN": _unary_math("LN", np.log, domain=lambda x: x > 0),
    "LOG2": _unary_math("LOG2", np.log2, domain=lambda x: x > 0),
    "LOG10": _unary_math("LOG10", np.log10, domain=lambda x: x > 0),
    "SIGN": _unary_math("SIGN", np.sign),
    "POWER": _binary_numeric("POWER", np.power),
    "POW": _binary_numeric("POW", np.power),
    "MOD": _binary_numeric("MOD", np.fmod),
    "LEAST": _least,
    "GREATEST": _greatest,
    "UPPER": _string_func("UPPER", str.upper),
    "LOWER": _string_func("LOWER", str.lower),
    "TRIM": _string_func("TRIM", str.strip),
    "LENGTH": _length,
    "STRPOS": _strpos,
    "SUBSTR": _substr,
    "COALESCE": _coalesce,
    "NULLIF": _nullif,
    "YEAR": _date_component("YEAR", lambda dt: dt.year),
    "MONTH": _date_component("MONTH", lambda dt: dt.month),
    "QUARTER": _date_component("QUARTER", lambda dt: (dt.month - 1) // 3 + 1),
    "DAYOFMONTH": _date_component("DAYOFMONTH", lambda dt: dt.day),
    "DAYOFWEEK": _date_component("DAYOFWEEK", lambda dt: (dt.weekday() + 1) % 7),
    "HOUR": _date_component("HOUR", lambda dt: dt.hour),
    "MINUTE": _date_component("MINUTE", lambda dt: dt.minute),
    "SECOND": _date_component("SECOND", lambda dt: dt.second),
}


def scalar_function(name):
    fn = _SCALAR_FUNCTIONS.get(name.upper())
    if fn is None:
        raise ExecutionError("unknown function {}()".format(name))
    return fn


def has_scalar_function(name):
    return name.upper() in _SCALAR_FUNCTIONS


# --------------------------------------------------------------------------
# Aggregates
# --------------------------------------------------------------------------


def _valid_values(column):
    return column.data[column.valid]


def _agg_count(column):
    return float(int(column.valid.sum()))


def _agg_count_star(column):
    return float(len(column))


def _agg_sum(column):
    values = _valid_values(column)
    if len(values) == 0:
        return None
    return float(values.sum())


def _agg_avg(column):
    values = _valid_values(column)
    if len(values) == 0:
        return None
    return float(values.mean())


def _agg_min(column):
    values = _valid_values(column)
    if len(values) == 0:
        return None
    if column.type is SQLType.VARCHAR:
        return min(values)
    return float(values.min())


def _agg_max(column):
    values = _valid_values(column)
    if len(values) == 0:
        return None
    if column.type is SQLType.VARCHAR:
        return max(values)
    return float(values.max())


def _agg_median(column):
    values = _valid_values(column)
    if len(values) == 0:
        return None
    return float(np.median(values.astype(np.float64)))


def _agg_stddev(column):
    values = _valid_values(column)
    if len(values) < 2:
        return None
    return float(values.astype(np.float64).std(ddof=1))


def _agg_stddev_pop(column):
    values = _valid_values(column)
    if len(values) == 0:
        return None
    return float(values.astype(np.float64).std(ddof=0))


def _agg_variance(column):
    values = _valid_values(column)
    if len(values) < 2:
        return None
    return float(values.astype(np.float64).var(ddof=1))


def _agg_var_pop(column):
    values = _valid_values(column)
    if len(values) == 0:
        return None
    return float(values.astype(np.float64).var(ddof=0))


def _agg_count_distinct(column):
    values = _valid_values(column)
    if len(values) == 0:
        return 0.0
    return float(len(np.unique(values)))


class QuantileAggregate:
    """QUANTILE(x, p) — the second argument must be a literal fraction."""

    def __init__(self, fraction):
        self.fraction = float(fraction)

    def __call__(self, column):
        values = _valid_values(column)
        if len(values) == 0:
            return None
        return float(
            np.quantile(values.astype(np.float64), self.fraction)
        )


_AGGREGATES = {
    "COUNT": _agg_count,
    "SUM": _agg_sum,
    "AVG": _agg_avg,
    "MIN": _agg_min,
    "MAX": _agg_max,
    "MEDIAN": _agg_median,
    "STDDEV": _agg_stddev,
    "STDDEV_POP": _agg_stddev_pop,
    "VARIANCE": _agg_variance,
    "VAR_POP": _agg_var_pop,
}


def aggregate_function(name, distinct=False, star=False, extra_literal=None):
    """Resolve an aggregate implementation.

    ``star`` marks COUNT(*); ``distinct`` marks COUNT(DISTINCT x);
    ``extra_literal`` carries QUANTILE's fraction.
    """
    upper = name.upper()
    if upper == "COUNT":
        if star:
            return _agg_count_star
        if distinct:
            return _agg_count_distinct
        return _agg_count
    if distinct:
        raise ExecutionError("DISTINCT is only supported with COUNT")
    if upper == "QUANTILE":
        if extra_literal is None:
            raise ExecutionError("QUANTILE requires a literal fraction argument")
        return QuantileAggregate(extra_literal)
    fn = _AGGREGATES.get(upper)
    if fn is None:
        raise ExecutionError("unknown aggregate {}()".format(name))
    return fn


def regexp_match(values, valid, pattern):
    """Vectorized REGEXP for object arrays of strings."""
    try:
        compiled = re.compile(pattern)
    except re.error as exc:
        raise ExecutionError("invalid REGEXP pattern: {}".format(exc)) from exc
    result = np.zeros(len(values), dtype=np.bool_)
    for index, (value, ok) in enumerate(zip(values, valid)):
        if ok and compiled.search(value) is not None:
            result[index] = True
    return result


def like_match(values, valid, pattern):
    """Vectorized SQL LIKE (%, _ wildcards)."""
    regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
    compiled = re.compile("^" + regex + "$", re.DOTALL)
    result = np.zeros(len(values), dtype=np.bool_)
    for index, (value, ok) in enumerate(zip(values, valid)):
        if ok and compiled.match(value) is not None:
            result[index] = True
    return result


def is_nan_free(value):
    return not (isinstance(value, float) and math.isnan(value))
