"""Tests for the Database facade: statement routing, stats, guards."""

import pytest

from repro.engine import (
    CatalogError,
    Database,
    EngineError,
    SQLSyntaxError,
    Table,
)


@pytest.fixture
def db():
    database = Database()
    database.load_table(
        "t", Table.from_columns(x=[1.0, 2.0, None], k=["a", "b", "a"])
    )
    return database


class TestStatementRouting:
    def test_select_returns_table(self, db):
        result = db.execute("SELECT x FROM t")
        assert result.num_rows == 3

    def test_insert_returns_count(self, db):
        assert db.execute("INSERT INTO t (x, k) VALUES (9, 'z')") == 1
        assert db.table("t").num_rows == 4

    def test_drop_removes(self, db):
        db.execute("DROP TABLE t")
        with pytest.raises(CatalogError):
            db.table("t")

    def test_create_duplicate_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE t (a DOUBLE)")

    def test_insert_type_mismatch_rejected(self, db):
        with pytest.raises(EngineError):
            db.execute("INSERT INTO t (x, k) VALUES ('text', 'z')")

    def test_syntax_error_carries_position(self, db):
        with pytest.raises(SQLSyntaxError) as excinfo:
            db.execute("SELECT x FROM t WHERE @")
        assert "position" in str(excinfo.value)

    def test_plan_requires_select(self, db):
        with pytest.raises(EngineError):
            db.plan("DROP TABLE t")

    def test_queries_executed_counter(self, db):
        before = db.queries_executed
        db.execute("SELECT x FROM t")
        db.execute("SELECT k FROM t")
        assert db.queries_executed == before + 2

    def test_trailing_semicolon_accepted(self, db):
        assert db.execute("SELECT x FROM t;").num_rows == 3


class TestStatistics:
    def test_stats_computed(self, db):
        stats = db.stats("t")
        assert stats.row_count == 3
        assert stats.columns["x"].null_count == 1
        assert stats.columns["k"].distinct_estimate == 2
        assert stats.columns["x"].min_value == 1.0
        assert stats.columns["x"].max_value == 2.0

    def test_stats_cached(self, db):
        first = db.stats("t")
        assert db.stats("t") is first

    def test_reload_invalidates_stats(self, db):
        db.stats("t")
        db.load_table("t", Table.from_columns(x=[5.0], k=["z"]))
        assert db.stats("t").row_count == 1

    def test_row_width(self, db):
        width = db.stats("t").row_width()
        assert width > 8.0  # a number column plus a text column

    def test_varchar_avg_width(self, db):
        db.load_table(
            "s", Table.from_columns(name=["ab", "abcd"])
        )
        assert db.stats("s").columns["name"].avg_width == 3.0


class TestOptimizerFlags:
    def test_flags_stored(self):
        database = Database(enable_pushdown=False, enable_pruning=False)
        assert database.enable_pushdown is False
        assert database.enable_pruning is False

    def test_disabled_flags_still_correct(self, db):
        plain = db.execute(
            "SELECT k, COUNT(*) AS n FROM t GROUP BY k ORDER BY k"
        ).to_rows()
        weak = Database(enable_pushdown=False, enable_pruning=False)
        weak.load_table("t", db.table("t"))
        assert weak.execute(
            "SELECT k, COUNT(*) AS n FROM t GROUP BY k ORDER BY k"
        ).to_rows() == plain
