"""SQL generation: transform translation, composition, merging, rewriting."""

from repro.sqlgen.compose import SqlPipelineBuilder, compose_pipeline
from repro.sqlgen.dialect import register_renderer, render
from repro.sqlgen.merge import merge_query
from repro.sqlgen.rewrite import rewrite_query, simplify_expr
from repro.sqlgen.translate import (
    Translation,
    Untranslatable,
    can_translate,
    translate_transform,
)

__all__ = [
    "SqlPipelineBuilder",
    "Translation",
    "Untranslatable",
    "can_translate",
    "compose_pipeline",
    "merge_query",
    "register_renderer",
    "render",
    "rewrite_query",
    "simplify_expr",
    "translate_transform",
]
