"""Scatterplot with regression overlay — forced client-side cuts.

The `sample` transform has no SQL equivalent, so the points pipeline must
come back to the client before sampling; the trend pipeline's filter
still offloads.  The example prints both pipelines' cuts, the fitted
trend line, and the Figure-3 stacked bars rendered in ASCII.

Run with::

    python examples/scatter_trend.py
"""

from repro import VegaPlus
from repro.datagen import generate_flights
from repro.perf import compare_plans, render_stacked_bars
from repro.spec import flights_scatter_spec


def main():
    session = VegaPlus(
        flights_scatter_spec(sample_size=2000),
        data={"flights": generate_flights(80_000)},
        latency_ms=20,
    )
    result = session.startup()
    print(session.plan.describe())
    print()
    print(result.summary())

    trend = session.results("trend")
    print("\nfitted trend line (air_time vs distance):")
    for point in trend:
        print("  distance={:8.1f} -> air_time={:7.1f}".format(
            point["distance"], point["air_time"]))
    slope = (trend[1]["air_time"] - trend[0]["air_time"]) / (
        trend[1]["distance"] - trend[0]["distance"])
    print("  slope ~ {:.4f} minutes/mile (cruise ~{:.0f} mph)".format(
        slope, 60.0 / slope))

    print("\nfilter to carrier AA:")
    interaction = session.interact("carrierFilter", "AA")
    print(interaction.summary())
    print("  {} sampled points".format(len(session.results("points"))))

    print("\nplan comparison (ASCII Figure 3):")
    comparison = compare_plans(session, [
        session.baseline_plan(), session.plan,
    ])
    print(render_stacked_bars(comparison))


if __name__ == "__main__":
    main()
