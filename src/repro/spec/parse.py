"""Parse Vega JSON (dict or text) into the typed spec model."""

import json

from repro.spec.model import (
    AxisSpec,
    DataSpec,
    EncodingChannel,
    LegendSpec,
    MarkSpec,
    ScaleSpec,
    SignalSpec,
    Spec,
    SpecError,
    TransformSpec,
)

_LEGEND_SCALE_KEYS = ("fill", "stroke", "size", "shape", "opacity")

# Transform spec keys that are not parameters.
_TRANSFORM_META_KEYS = {"type", "signal"}


def parse_spec(source):
    """Parse a Vega spec from JSON text or an already-decoded dict."""
    if isinstance(source, str):
        try:
            source = json.loads(source)
        except json.JSONDecodeError as exc:
            raise SpecError("invalid JSON: {}".format(exc)) from exc
    if not isinstance(source, dict):
        raise SpecError("specification must be a JSON object")

    spec = Spec(
        width=int(source.get("width", 400)),
        height=int(source.get("height", 200)),
        description=str(source.get("description", "")),
    )
    for index, raw in enumerate(_as_list(source.get("signals"), "signals")):
        spec.signals.append(_parse_signal(raw, "signals[{}]".format(index)))
    for index, raw in enumerate(_as_list(source.get("data"), "data")):
        spec.data.append(_parse_data(raw, "data[{}]".format(index)))
    for index, raw in enumerate(_as_list(source.get("scales"), "scales")):
        spec.scales.append(_parse_scale(raw, "scales[{}]".format(index)))
    for index, raw in enumerate(_as_list(source.get("marks"), "marks")):
        spec.marks.append(_parse_mark(raw, "marks[{}]".format(index)))
    for index, raw in enumerate(_as_list(source.get("axes"), "axes")):
        path = "axes[{}]".format(index)
        if not isinstance(raw, dict) or "scale" not in raw:
            raise SpecError("axis requires a 'scale'", path)
        spec.axes.append(
            AxisSpec(
                scale=raw["scale"],
                orient=raw.get("orient", "bottom"),
                title=raw.get("title"),
            )
        )
    for index, raw in enumerate(_as_list(source.get("legends"), "legends")):
        path = "legends[{}]".format(index)
        if not isinstance(raw, dict):
            raise SpecError("legend must be an object", path)
        scales = {
            key: raw[key]
            for key in _LEGEND_SCALE_KEYS
            if isinstance(raw.get(key), str)
        }
        if not scales:
            raise SpecError(
                "legend needs at least one scale channel", path
            )
        spec.legends.append(
            LegendSpec(scales=scales, title=raw.get("title"))
        )
    return spec


def _as_list(value, path):
    if value is None:
        return []
    if not isinstance(value, list):
        raise SpecError("expected a list", path)
    return value


def _parse_signal(raw, path):
    if not isinstance(raw, dict) or "name" not in raw:
        raise SpecError("signal requires a 'name'", path)
    on = raw.get("on")
    if on is not None and not isinstance(on, list):
        raise SpecError("signal 'on' must be a list of handlers", path)
    return SignalSpec(
        name=raw["name"],
        value=raw.get("value"),
        bind=raw.get("bind"),
        update=raw.get("update"),
        on=on,
    )


def _parse_data(raw, path):
    if not isinstance(raw, dict) or "name" not in raw:
        raise SpecError("dataset requires a 'name'", path)
    values = raw.get("values")
    if values is not None and not isinstance(values, list):
        raise SpecError("'values' must be a list of rows", path)
    transforms = []
    for index, step in enumerate(_as_list(raw.get("transform"), path)):
        transforms.append(
            _parse_transform(step, "{}.transform[{}]".format(path, index))
        )
    return DataSpec(
        name=raw["name"],
        values=values,
        source=raw.get("source"),
        url=raw.get("url"),
        transform=transforms,
    )


def _parse_transform(raw, path):
    if not isinstance(raw, dict) or "type" not in raw:
        raise SpecError("transform requires a 'type'", path)
    params = {
        key: value
        for key, value in raw.items()
        if key not in _TRANSFORM_META_KEYS
    }
    return TransformSpec(
        type=raw["type"],
        params=params,
        output_signal=raw.get("signal"),
    )


def _parse_scale(raw, path):
    if not isinstance(raw, dict) or "name" not in raw:
        raise SpecError("scale requires a 'name'", path)
    return ScaleSpec(
        name=raw["name"],
        type=raw.get("type", "linear"),
        domain=raw.get("domain") if isinstance(raw.get("domain"), dict) else None,
        range=raw.get("range"),
    )


def _parse_mark(raw, path):
    if not isinstance(raw, dict) or "type" not in raw:
        raise SpecError("mark requires a 'type'", path)
    data = None
    from_clause = raw.get("from")
    if isinstance(from_clause, dict):
        data = from_clause.get("data")
    encodings = []
    encode = raw.get("encode", {})
    if isinstance(encode, dict):
        for block_name in ("enter", "update"):
            block = encode.get(block_name, {})
            if not isinstance(block, dict):
                continue
            for channel, entry in block.items():
                if not isinstance(entry, dict):
                    continue
                encodings.append(
                    EncodingChannel(
                        channel=channel,
                        field=entry.get("field")
                        if isinstance(entry.get("field"), str)
                        else None,
                        scale=entry.get("scale"),
                        value=entry.get("value"),
                        signal=entry.get("signal"),
                    )
                )
    return MarkSpec(type=raw["type"], data=data, encodings=encodings)
