"""Vectorized evaluation of Vega expressions over ColumnBatch columns.

The row evaluator (:mod:`repro.expr.evaluator`) applies JS coercion
rules one datum at a time.  This module evaluates the same ASTs over
whole columns with numpy, producing bit-identical results for the
supported subset; anything outside that subset raises
:class:`Unvectorizable` and the caller falls back to the row path, so
behaviour never changes — only speed.

Value model: every sub-expression evaluates to either a Python scalar
(literals, signals, constants) or a :class:`repro.data.Column` of the
batch's length.  JS ``null`` maps to the validity mask; JS ``NaN`` is a
*value* (a DOUBLE element with ``valid=True``) — the distinction matters
because ``isValid`` rejects both while ``==`` treats them differently.
The numeric view of a column replaces invalid slots with NaN, mirroring
``_number(None) -> NaN``, so comparisons and arithmetic inherit the
correct NULL semantics from IEEE NaN propagation.
"""

import numpy as np

from repro.data import Column, SQLType
from repro.data.grouping import Unvectorizable  # noqa: F401  (canonical home;
# re-exported here because every transform imports it from this module)
from repro.expr import ast
from repro.expr.functions import (
    CONSTANTS,
    FUNCTIONS,
    _boolean,
    _number,
    _string,
    _test,
)

_NAN = float("nan")


def _kind(value):
    """Coercion kind of a scalar or Column: number/bool/string/null/other."""
    if isinstance(value, Column):
        return {
            SQLType.DOUBLE: "number",
            SQLType.BOOLEAN: "bool",
            SQLType.VARCHAR: "string",
        }[value.type]
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    return "other"


_NUMERIC_KINDS = ("number", "bool")


class VectorEvaluator:
    """Evaluates a parsed expression against every row of one batch."""

    def __init__(self, batch, signals=None):
        self.batch = batch
        self.n = batch.num_rows
        self.signals = signals if signals is not None else {}

    # -- dispatch ----------------------------------------------------------

    def evaluate(self, node):
        method = getattr(self, "_eval_" + type(node).__name__.lower(), None)
        if method is None:
            raise Unvectorizable("node {!r}".format(type(node).__name__))
        return method(node)

    # -- coercion helpers --------------------------------------------------

    def _numeric_view(self, value):
        """Float64 view with NaN in invalid slots (``_number(None)`` is
        NaN); scalars coerce via ``_number``.  VARCHAR needs per-string
        parsing — not vectorized."""
        if isinstance(value, Column):
            if value.type is SQLType.VARCHAR:
                raise Unvectorizable("string-to-number coercion")
            data = value.data.astype(np.float64) \
                if value.type is SQLType.BOOLEAN else value.data
            if value.valid.all():
                return data
            return np.where(value.valid, data, _NAN)
        number = _number(value)
        if isinstance(value, (list, dict)):
            raise Unvectorizable("structured scalar in numeric context")
        return number

    def _truthy(self, value):
        """Boolean mask of JS truthiness for a Column (``_boolean``:
        None, NaN, 0, "" and False are falsy)."""
        if value.type is SQLType.DOUBLE:
            with np.errstate(invalid="ignore"):
                return value.valid & (value.data != 0) & ~np.isnan(value.data)
        if value.type is SQLType.BOOLEAN:
            return value.valid & value.data
        return value.valid & (value.data != "")

    def _invalid_mask(self, value):
        """Null-ness per row: a column's invalid slots; scalars are never
        null here (the null literal is handled before this is called)."""
        if isinstance(value, Column):
            return ~value.valid
        return False

    # -- node handlers -----------------------------------------------------

    def _eval_literal(self, node):
        return node.value

    def _eval_identifier(self, node):
        name = node.name
        if name in self.signals:
            return self.signals[name]
        if name in CONSTANTS:
            return CONSTANTS[name]
        # bare ``datum`` or an unknown identifier: the row path either
        # returns the dict or raises ExprEvalError — fall back.
        raise Unvectorizable("identifier {!r}".format(name))

    def _eval_member(self, node):
        if isinstance(node.obj, ast.Identifier) and node.obj.name == "datum":
            prop = node.prop
            if isinstance(prop, ast.Literal):
                name = prop.value
            else:
                name = self.evaluate(prop)
                if isinstance(name, Column):
                    raise Unvectorizable("computed member on datum")
            if isinstance(name, float) and name.is_integer():
                name = str(int(name))
            if not isinstance(name, str):
                raise Unvectorizable("non-string datum member")
            column = self.batch.columns.get(name)
            # missing field: row.get() yields None for every row
            return column if column is not None else None
        obj = self.evaluate(node.obj)
        prop = self.evaluate(node.prop)
        if isinstance(obj, Column) or isinstance(prop, Column):
            raise Unvectorizable("member access on column")
        # scalar member access — mirror the row evaluator exactly
        if obj is None:
            return None
        if isinstance(obj, dict):
            if isinstance(prop, float) and prop.is_integer():
                prop = str(int(prop))
            return obj.get(prop)
        if isinstance(obj, (list, str)):
            if prop == "length":
                return float(len(obj))
            index = int(_number(prop))
            if -len(obj) <= index < len(obj):
                return obj[index]
            return None
        return None

    def _eval_unary(self, node):
        value = self.evaluate(node.operand)
        op = node.op
        if not isinstance(value, Column):
            if op == "-":
                return -_number(value)
            if op == "+":
                return _number(value)
            if op == "!":
                return not _boolean(value)
            raise Unvectorizable("unary {!r}".format(op))
        if op == "!":
            return Column(SQLType.BOOLEAN, ~self._truthy(value))
        if op in ("-", "+"):
            view = self._numeric_view(value)
            return Column(SQLType.DOUBLE, -view if op == "-" else +view)
        # ``~`` int-converts (raises on NULL in the row path too)
        raise Unvectorizable("unary {!r}".format(op))

    def _eval_binary(self, node):
        op = node.op
        if op in ("&&", "||"):
            left = self.evaluate(node.left)
            if not isinstance(left, Column):
                # same branch taken for every row — plain short-circuit
                taken = _boolean(left)
                if op == "&&":
                    return self.evaluate(node.right) if taken else left
                return left if taken else self.evaluate(node.right)
            right = self.evaluate(node.right)
            cond = self._truthy(left)
            if op == "&&":
                return self._merge(cond, right, left)
            return self._merge(cond, left, right)
        left = self.evaluate(node.left)
        right = self.evaluate(node.right)
        if not isinstance(left, Column) and not isinstance(right, Column):
            from repro.expr.evaluator import _BINARY_IMPL

            impl = _BINARY_IMPL.get(op)
            if impl is None:
                raise Unvectorizable("binary {!r}".format(op))
            return impl(left, right)
        if op in ("+", "-", "*", "/", "%"):
            return self._arithmetic(op, left, right)
        if op in ("<", ">", "<=", ">="):
            return self._compare(op, left, right)
        if op in ("==", "!="):
            mask = self._loose_eq(left, right)
            return Column(SQLType.BOOLEAN, mask if op == "==" else ~mask)
        if op in ("===", "!=="):
            mask = self._strict_eq(left, right)
            return Column(SQLType.BOOLEAN, mask if op == "===" else ~mask)
        raise Unvectorizable("binary {!r}".format(op))

    def _arithmetic(self, op, left, right):
        if op == "+" and ("string" in (_kind(left), _kind(right))):
            raise Unvectorizable("string concatenation")
        a = self._numeric_view(left)
        b = self._numeric_view(right)
        with np.errstate(divide="ignore", invalid="ignore"):
            if op == "+":
                data = a + b
            elif op == "-":
                data = a - b
            elif op == "*":
                data = a * b
            elif op == "/":
                # IEEE semantics match _divide: x/0 -> signed inf, 0/0
                # and NaN/0 -> NaN
                data = a / b
            else:
                # fmod matches _modulo: fmod(x, 0), fmod(inf, y) -> NaN
                data = np.fmod(a, b)
        return Column(SQLType.DOUBLE, data)

    def _compare(self, op, left, right):
        kinds = (_kind(left), _kind(right))
        if kinds == ("string", "string"):
            da, va = self._string_parts(left)
            db, vb = self._string_parts(right)
            with np.errstate(invalid="ignore"):
                if op == "<":
                    mask = da < db
                elif op == ">":
                    mask = da > db
                elif op == "<=":
                    mask = da <= db
                else:
                    mask = da >= db
            # a NULL on either side is not a str: the row path coerces
            # both sides to numbers, gets NaN, and returns False
            return Column(SQLType.BOOLEAN, np.asarray(mask) & va & vb)
        for side in (left, right):
            if isinstance(side, Column) and side.type is SQLType.VARCHAR:
                raise Unvectorizable("string column in numeric comparison")
        a = self._numeric_view(left)
        b = self._numeric_view(right)
        with np.errstate(invalid="ignore"):
            if op == "<":
                mask = a < b
            elif op == ">":
                mask = a > b
            elif op == "<=":
                mask = a <= b
            else:
                mask = a >= b
        return Column(SQLType.BOOLEAN, mask)

    def _string_parts(self, value):
        """(data, valid) for a string-kind operand; scalar data broadcasts,
        scalar valid is an all-True mask."""
        if isinstance(value, Column):
            return value.data, value.valid
        return value, np.ones(self.n, dtype=np.bool_)

    def _loose_eq(self, left, right):
        ka, kb = _kind(left), _kind(right)
        if ka == "null" and kb == "null":
            return np.ones(self.n, dtype=np.bool_)
        if ka == "null" or kb == "null":
            other = right if ka == "null" else left
            if isinstance(other, Column):
                # _js_eq(x, None) is True only when x is None too
                return ~other.valid
            return np.zeros(self.n, dtype=np.bool_)
        if ka == "string" and kb == "string":
            da, va = self._string_parts(left)
            db, vb = self._string_parts(right)
            return (va & vb & np.asarray(da == db)) \
                | (~va & ~vb)
        if ka == "string" or kb == "string":
            text = left if ka == "string" else right
            if isinstance(text, Column):
                raise Unvectorizable("string column vs number equality")
            # scalar string against numbers: _js_eq coerces via _number
            text = _number(text)
            left = text if ka == "string" else left
            right = text if kb == "string" else right
        if ka == "other" or kb == "other":
            raise Unvectorizable("non-scalar equality")
        # numeric equality: NaN (and coerced NULL) never equals anything;
        # two NULLs are equal (the _js_eq both-None special case)
        a = self._numeric_view(left)
        b = self._numeric_view(right)
        with np.errstate(invalid="ignore"):
            mask = np.asarray(a == b)
        both_null = self._invalid_mask(left) & self._invalid_mask(right)
        if both_null is not False:
            mask = mask | both_null
        return mask

    def _strict_eq(self, left, right):
        ka, kb = _kind(left), _kind(right)
        if ka == "null" and kb == "null":
            return np.ones(self.n, dtype=np.bool_)
        if ka == "null" or kb == "null":
            other = right if ka == "null" else left
            if isinstance(other, Column):
                return ~other.valid
            return np.zeros(self.n, dtype=np.bool_)
        if ka == "other" or kb == "other":
            raise Unvectorizable("non-scalar strict equality")
        if ka != kb:
            # no coercion under ===: differing types never match (the
            # int/float carve-out collapses: our numbers are all floats)
            return np.zeros(self.n, dtype=np.bool_)
        if ka == "number":
            a = self._numeric_view(left)
            b = self._numeric_view(right)
            with np.errstate(invalid="ignore"):
                mask = np.asarray(a == b)
            both_null = self._invalid_mask(left) & self._invalid_mask(right)
            if both_null is not False:
                mask = mask | both_null
            return mask
        da, va = self._data_parts(left)
        db, vb = self._data_parts(right)
        return (va & vb & np.asarray(da == db)) | (~va & ~vb)

    def _data_parts(self, value):
        if isinstance(value, Column):
            return value.data, value.valid
        return value, np.ones(self.n, dtype=np.bool_)

    def _eval_conditional(self, node):
        test = self.evaluate(node.test)
        if not isinstance(test, Column):
            branch = node.consequent if _boolean(test) else node.alternate
            return self.evaluate(branch)
        cond = self._truthy(test)
        consequent = self.evaluate(node.consequent)
        alternate = self.evaluate(node.alternate)
        return self._merge(cond, consequent, alternate)

    def _merge(self, cond, when_true, when_false):
        """Row-wise select between two operands of one coercion kind
        (NULL merges into either side as invalid slots)."""
        kinds = {_kind(when_true), _kind(when_false)} - {"null"}
        if not kinds:
            return None
        if len(kinds) != 1 or "other" in kinds:
            raise Unvectorizable("mixed-type merge")
        kind = kinds.pop()
        sql_type = {
            "number": SQLType.DOUBLE,
            "bool": SQLType.BOOLEAN,
            "string": SQLType.VARCHAR,
        }[kind]
        da, va = self._branch_parts(when_true, sql_type)
        db, vb = self._branch_parts(when_false, sql_type)
        data = np.where(cond, da, db)
        if sql_type is SQLType.VARCHAR:
            data = data.astype(object)
        valid = np.where(cond, va, vb)
        return Column(sql_type, data, valid)

    def _branch_parts(self, value, sql_type):
        placeholder = {
            SQLType.DOUBLE: 0.0, SQLType.VARCHAR: "", SQLType.BOOLEAN: False,
        }[sql_type]
        if value is None:
            return placeholder, False
        if isinstance(value, Column):
            return value.data, value.valid
        if isinstance(value, int) and not isinstance(value, bool) \
                and sql_type is SQLType.DOUBLE:
            value = float(value)
        return value, True

    def _eval_call(self, node):
        args = [self.evaluate(arg) for arg in node.args]
        if not any(isinstance(arg, Column) for arg in args):
            fn = FUNCTIONS.get(node.func)
            if fn is None or node.func == "now":
                raise Unvectorizable("function {!r}".format(node.func))
            try:
                return fn(*args)
            except TypeError:
                # row path wraps this in ExprEvalError — fall back so the
                # error surfaces identically
                raise Unvectorizable("bad arguments") from None
        handler = getattr(self, "_fn_" + node.func, None)
        if handler is None:
            raise Unvectorizable("function {!r}".format(node.func))
        return handler(args)

    # -- vectorized function library (column-arg cases only) ---------------

    def _one_arg(self, args):
        if len(args) != 1:
            raise Unvectorizable("arity")
        return args[0]

    def _fn_isValid(self, args):
        value = self._one_arg(args)
        if value.type is SQLType.DOUBLE:
            with np.errstate(invalid="ignore"):
                mask = value.valid & ~np.isnan(value.data)
        else:
            mask = value.valid
        return Column(SQLType.BOOLEAN, mask)

    def _fn_isNaN(self, args):
        view = self._numeric_view(self._one_arg(args))
        return Column(SQLType.BOOLEAN, np.isnan(view))

    def _fn_isFinite(self, args):
        view = self._numeric_view(self._one_arg(args))
        return Column(SQLType.BOOLEAN, np.isfinite(view))

    def _fn_toNumber(self, args):
        return Column(SQLType.DOUBLE, self._numeric_view(self._one_arg(args)))

    def _fn_abs(self, args):
        return Column(SQLType.DOUBLE,
                      np.abs(self._numeric_view(self._one_arg(args))))

    def _fn_sqrt(self, args):
        view = self._numeric_view(self._one_arg(args))
        with np.errstate(invalid="ignore"):
            return Column(SQLType.DOUBLE, np.sqrt(view))

    def _int_rounding_view(self, args):
        # math.floor/ceil/trunc raise on NaN and infinities; keep that
        # error behaviour by refusing to vectorize those inputs
        view = self._numeric_view(self._one_arg(args))
        if not np.isfinite(view).all():
            raise Unvectorizable("non-finite rounding input")
        return view

    def _fn_floor(self, args):
        return Column(SQLType.DOUBLE, np.floor(self._int_rounding_view(args)))

    def _fn_ceil(self, args):
        return Column(SQLType.DOUBLE, np.ceil(self._int_rounding_view(args)))

    def _fn_round(self, args):
        # Vega round(): floor(x + 0.5), not banker's rounding
        return Column(SQLType.DOUBLE,
                      np.floor(self._int_rounding_view(args) + 0.5))

    def _fn_trunc(self, args):
        return Column(SQLType.DOUBLE, np.trunc(self._int_rounding_view(args)))

    def _guarded_log(self, args, log_fn):
        view = self._numeric_view(self._one_arg(args))
        with np.errstate(divide="ignore", invalid="ignore"):
            return Column(SQLType.DOUBLE,
                          np.where(view > 0, log_fn(view), _NAN))

    def _fn_log(self, args):
        return self._guarded_log(args, np.log)

    def _fn_log2(self, args):
        return self._guarded_log(args, np.log2)

    def _fn_log10(self, args):
        return self._guarded_log(args, np.log10)

    def _fn_min(self, args):
        return self._minmax(args, np.minimum)

    def _fn_max(self, args):
        return self._minmax(args, np.maximum)

    def _minmax(self, args, reducer):
        if not args:
            raise Unvectorizable("arity")
        # NaN (and coerced NULL) poisons the result, matching _minmax;
        # np.minimum/np.maximum propagate NaN from either operand
        views = [self._numeric_view(arg) for arg in args]
        result = views[0]
        for view in views[1:]:
            with np.errstate(invalid="ignore"):
                result = reducer(result, view)
        return Column(SQLType.DOUBLE, np.broadcast_to(
            result, (self.n,)).copy() if np.ndim(result) == 0 else result)

    def _fn_clamp(self, args):
        if len(args) != 3:
            raise Unvectorizable("arity")
        value, lo, hi = args
        if isinstance(lo, Column) or isinstance(hi, Column):
            raise Unvectorizable("column clamp bounds")
        lo, hi = _number(lo), _number(hi)
        if np.isnan(lo) or np.isnan(hi):
            raise Unvectorizable("NaN clamp bounds")
        if lo > hi:
            lo, hi = hi, lo
        view = self._numeric_view(value)
        with np.errstate(invalid="ignore"):
            # _clamp(NaN) resolves to hi: min(hi, NaN) is hi, max(lo, hi)
            # is hi — np.clip would return NaN instead
            data = np.where(np.isnan(view), hi, np.clip(view, lo, hi))
        return Column(SQLType.DOUBLE, data)

    def _fn_test(self, args):
        if len(args) not in (2, 3):
            raise Unvectorizable("arity")
        pattern = args[0]
        value = args[1]
        flags = args[2] if len(args) == 3 else ""
        if not isinstance(pattern, str) or not isinstance(flags, str) \
                or not isinstance(value, Column):
            raise Unvectorizable("test() argument shapes")
        # per-element regex (the regex itself is not vectorizable, but
        # this still skips the per-row dict machinery); _string maps
        # NULL to "null", matching the row path
        data = [_test(pattern, item, flags) for item in value.to_list()]
        return Column(SQLType.BOOLEAN, np.asarray(data, dtype=np.bool_))

    def _fn_if(self, args):
        if len(args) != 3:
            raise Unvectorizable("arity")
        test, when_true, when_false = args
        if not isinstance(test, Column):
            return when_true if _boolean(test) else when_false
        return self._merge(self._truthy(test), when_true, when_false)

    def _eval_arrayexpr(self, node):
        elements = [self.evaluate(element) for element in node.elements]
        if any(isinstance(element, Column) for element in elements):
            raise Unvectorizable("array of columns")
        return elements

    def _eval_objectexpr(self, node):
        values = [self.evaluate(value) for value in node.values]
        if any(isinstance(value, Column) for value in values):
            raise Unvectorizable("object of columns")
        return dict(zip(node.keys, values))

    # -- transform-facing helpers -----------------------------------------

    def truthy_mask(self, value):
        """Filter-style truthiness of an evaluation result as a boolean
        mask over all rows."""
        if isinstance(value, Column):
            return self._truthy(value)
        keep = _boolean(value)
        return np.full(self.n, keep, dtype=np.bool_)

    def as_column(self, value):
        """An evaluation result as a Column (scalars broadcast; the row
        path would store the same scalar in every output dict)."""
        if isinstance(value, Column):
            return value
        if value is None:
            return Column.nulls(SQLType.DOUBLE, self.n)
        if isinstance(value, bool):
            return Column(SQLType.BOOLEAN,
                          np.full(self.n, value, dtype=np.bool_))
        if isinstance(value, float):
            return Column(SQLType.DOUBLE, np.full(self.n, value))
        if isinstance(value, str):
            data = np.empty(self.n, dtype=object)
            data[:] = value
            return Column(SQLType.VARCHAR, data)
        # ints would materialize as Python ints in row dicts; lists and
        # dicts cannot live in a column at all
        raise Unvectorizable("scalar {!r} in column context".format(value))


def string_coercion_view(column):
    """Per-element ``_string`` of a column (NULL -> "null")."""
    return [_string(value) for value in column.to_list()]
