"""Custom partitioning playground: the performance view's toggles (§3.1).

"Users will be able to toggle the operators to customize the
partitioning.  For instance, the user could assign the bin operator to be
executed on the client ... which will make the execution much slower
because of more data transferring."  This example measures every possible
cut of the flights pipeline and prints the stacked comparison.

Run with::

    python examples/custom_partition.py
"""

from repro import VegaPlus
from repro.datagen import generate_flights
from repro.perf import compare_plans, plan_graph
from repro.spec import flights_histogram_spec

CUT_LABELS = {
    0: "all-client (Vega)",
    1: "extent on server",
    2: "extent+bin on server",
    3: "all-server (recommended)",
}


def main():
    session = VegaPlus(
        flights_histogram_spec(),
        data={"flights": generate_flights(100_000)},
        latency_ms=20,
    )
    session.startup()
    print("optimizer recommends: cut={}".format(
        session.plan.datasets["binned"].cut
    ))

    plans = [
        session.custom_plan({"binned": cut}, label=CUT_LABELS[cut])
        for cut in range(4)
    ]
    comparison = compare_plans(session, plans)
    print()
    print(comparison.format_table())

    print("\nper-cut estimated transfer:")
    for cut in range(4):
        plan = session.custom_plan({"binned": cut})
        dataset_plan = plan.datasets["binned"]
        print("  cut={} -> ~{:>9} rows, ~{:>12} bytes over the wire".format(
            cut, int(dataset_plan.transfer_rows),
            int(dataset_plan.transfer_bytes),
        ))

    print("\nplan graph for the user's bin-on-client variant:")
    custom = session.custom_plan({"binned": 1}, label="bin-on-client")
    print(plan_graph(session, custom).to_dot())


if __name__ == "__main__":
    main()
