"""Pratt (top-down operator precedence) parser for Vega expressions.

``parse(source)`` returns the root :class:`~repro.expr.ast.Node`.  The
grammar follows JavaScript expression precedence, minus assignment, comma
sequencing, and anything with side effects — the same subset Vega's own
expression parser accepts.
"""

from repro.expr import ast
from repro.expr.errors import ExprSyntaxError
from repro.expr.lexer import EOF, IDENT, NUMBER, PUNCT, STRING, tokenize

# Binary operator binding powers (higher binds tighter).  Mirrors JS.
_BINARY_POWER = {
    "||": 4,
    "&&": 5,
    "|": 6,
    "^": 7,
    "&": 8,
    "==": 9, "!=": 9, "===": 9, "!==": 9,
    "<": 10, ">": 10, "<=": 10, ">=": 10,
    "<<": 11, ">>": 11, ">>>": 11,
    "+": 12, "-": 12,
    "*": 13, "/": 13, "%": 13,
    "**": 14,
}

_TERNARY_POWER = 3
_UNARY_POWER = 15
_POSTFIX_POWER = 17  # call, member access

_KEYWORD_LITERALS = {
    "true": True,
    "false": False,
    "null": None,
}


class _Parser:
    def __init__(self, source):
        self.source = source
        self.tokens = tokenize(source)
        self.index = 0

    @property
    def current(self):
        return self.tokens[self.index]

    def advance(self):
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, value):
        token = self.current
        if token.kind != PUNCT or token.value != value:
            raise ExprSyntaxError(
                "expected {!r}, found {!r}".format(value, token.value), token.pos
            )
        return self.advance()

    def at(self, value):
        return self.current.kind == PUNCT and self.current.value == value

    def parse(self):
        node = self.expression(0)
        if self.current.kind != EOF:
            raise ExprSyntaxError(
                "unexpected trailing input {!r}".format(self.current.value),
                self.current.pos,
            )
        return node

    def expression(self, min_power):
        node = self.prefix()
        while True:
            token = self.current
            if token.kind != PUNCT:
                break
            op = token.value
            if op in ("(", "[", "."):
                if _POSTFIX_POWER < min_power:
                    break
                node = self.postfix(node)
                continue
            if op == "?":
                if _TERNARY_POWER < min_power:
                    break
                self.advance()
                consequent = self.expression(0)
                self.expect(":")
                # Ternary is right-associative.
                alternate = self.expression(_TERNARY_POWER)
                node = ast.Conditional(node, consequent, alternate)
                continue
            power = _BINARY_POWER.get(op)
            if power is None or power < min_power:
                break
            self.advance()
            # '**' is right-associative; everything else left-associative.
            next_min = power if op == "**" else power + 1
            right = self.expression(next_min)
            node = ast.Binary(op, node, right)
        return node

    def prefix(self):
        token = self.current
        if token.kind == NUMBER:
            self.advance()
            return ast.Literal(token.value)
        if token.kind == STRING:
            self.advance()
            return ast.Literal(token.value)
        if token.kind == IDENT:
            self.advance()
            if token.value in _KEYWORD_LITERALS:
                return ast.Literal(_KEYWORD_LITERALS[token.value])
            return ast.Identifier(token.value)
        if token.kind == PUNCT:
            if token.value in ("-", "+", "!", "~"):
                self.advance()
                operand = self.expression(_UNARY_POWER)
                return ast.Unary(token.value, operand)
            if token.value == "(":
                self.advance()
                node = self.expression(0)
                self.expect(")")
                return node
            if token.value == "[":
                return self.array_literal()
            if token.value == "{":
                return self.object_literal()
        raise ExprSyntaxError(
            "unexpected token {!r}".format(token.value), token.pos
        )

    def postfix(self, node):
        token = self.advance()
        if token.value == "(":
            if not isinstance(node, ast.Identifier):
                raise ExprSyntaxError("only named functions may be called", token.pos)
            args = []
            if not self.at(")"):
                while True:
                    args.append(self.expression(0))
                    if self.at(","):
                        self.advance()
                        continue
                    break
            self.expect(")")
            return ast.Call(node.name, tuple(args))
        if token.value == "[":
            prop = self.expression(0)
            self.expect("]")
            return ast.Member(node, prop, computed=True)
        if token.value == ".":
            name = self.current
            if name.kind != IDENT:
                raise ExprSyntaxError("expected property name after '.'", name.pos)
            self.advance()
            return ast.Member(node, ast.Literal(name.value), computed=False)
        raise ExprSyntaxError("unexpected token {!r}".format(token.value), token.pos)

    def array_literal(self):
        self.expect("[")
        elements = []
        if not self.at("]"):
            while True:
                elements.append(self.expression(0))
                if self.at(","):
                    self.advance()
                    continue
                break
        self.expect("]")
        return ast.ArrayExpr(tuple(elements))

    def object_literal(self):
        self.expect("{")
        keys = []
        values = []
        if not self.at("}"):
            while True:
                token = self.current
                if token.kind in (IDENT, STRING):
                    keys.append(str(token.value))
                elif token.kind == NUMBER:
                    keys.append(_format_number_key(token.value))
                else:
                    raise ExprSyntaxError("invalid object key", token.pos)
                self.advance()
                self.expect(":")
                values.append(self.expression(0))
                if self.at(","):
                    self.advance()
                    continue
                break
        self.expect("}")
        return ast.ObjectExpr(tuple(keys), tuple(values))


def _format_number_key(value):
    if float(value).is_integer():
        return str(int(value))
    return str(value)


def parse(source):
    """Parse a Vega expression string into an AST."""
    return _Parser(source).parse()
