"""E7 — backend portability (the demo's DBMS drop-down).

The paper supports PostgreSQL, OmniSciDB, and DuckDB behind one
middleware; this reproduction proves the same pluggability with its two
backends (the embedded columnar engine and stdlib sqlite).  Both must
return identical results; their relative speed differences mirror the
paper's motivation for letting users pick a backend.
"""

from conftest import print_header, print_rows, scaled

from repro.core import VegaPlus
from repro.datagen import generate_flights
from repro.spec import flights_histogram_spec

SIZES = [10_000, 50_000]


def run(table, backend):
    session = VegaPlus(
        flights_histogram_spec(), data={"flights": table},
        backend=backend, latency_ms=20,
    )
    result = session.startup()
    rows = sorted(
        ((row["bin0"] is None, row["bin0"]), row["count"])
        for row in result.datasets["binned"]
    )
    return result, rows


def test_e7_backend_comparison(benchmark):
    print_header("E7: backend comparison (identical plans and results)")
    table_rows = []
    for size in SIZES:
        n = scaled(size)
        table = generate_flights(n)
        embedded_result, embedded_rows = run(table, "embedded")
        sqlite_result, sqlite_rows = run(table, "sqlite")
        assert embedded_rows == sqlite_rows
        table_rows.append([
            n, "embedded",
            "{:.4f}".format(embedded_result.breakdown.server),
            "{:.4f}".format(embedded_result.total_seconds),
        ])
        table_rows.append([
            n, "sqlite",
            "{:.4f}".format(sqlite_result.breakdown.server),
            "{:.4f}".format(sqlite_result.total_seconds),
        ])
    print_rows(["rows", "backend", "server(s)", "total(s)"], table_rows)
    print("\nboth backends consume the same generated SQL and return "
          "identical histograms (portability across DBMSs, §3.1)")

    table = generate_flights(scaled(50_000))

    def embedded_startup():
        return run(table, "embedded")

    benchmark.pedantic(embedded_startup, rounds=3, iterations=1)
