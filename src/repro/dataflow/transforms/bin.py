"""Binning and extent transforms (the heart of the flights histogram)."""

import math

import numpy as np

from repro.data import Column, ColumnBatch, SQLType
from repro.dataflow.transforms.base import (
    Transform,
    TransformError,
    ValueTransform,
    register_transform,
)
from repro.dataflow.vectorized import Unvectorizable


def bin_params(extent, maxbins=20, step=None, nice=True, minstep=0.0):
    """Compute the bin step and (niced) start/stop, following
    vega-statistics ``bin()``.

    Returns ``(start, stop, step)``.  The SQL translation reuses this so
    client and server produce identical bucket boundaries.
    """
    lo, hi = float(extent[0]), float(extent[1])
    if not math.isfinite(lo) or not math.isfinite(hi):
        raise TransformError("bin extent must be finite")
    if lo == hi:
        hi = lo + 1.0
    span = hi - lo
    if step is not None:
        step = float(step)
        if step <= 0:
            raise TransformError("bin step must be positive")
    else:
        # Choose a nice step of the form {1, 2, 5} * 10^k.
        raw = span / max(int(maxbins), 1)
        raw = max(raw, minstep)
        power = math.floor(math.log10(raw)) if raw > 0 else 0
        step = 10.0 ** power
        for multiple in (1.0, 2.0, 5.0, 10.0):
            candidate = multiple * 10.0 ** power
            if span / candidate <= maxbins:
                step = candidate
                break
    if nice:
        start = math.floor(lo / step) * step
        stop = math.ceil(hi / step) * step
    else:
        start, stop = lo, hi
    return start, stop, step


def bin_index(value, start, step):
    """Bucket start for ``value`` (the bin0 boundary)."""
    return start + math.floor((value - start) / step) * step


@register_transform("extent")
class ExtentTransform(ValueTransform):
    """Compute [min, max] of a field as an operator value (Vega `extent`).

    Downstream bin transforms reference it via an operator/signal param.
    """

    def compute_value(self, rows, params, signals):
        field = params.get("field")
        if not field:
            raise TransformError("extent requires 'field'")
        lo = math.inf
        hi = -math.inf
        for row in rows:
            value = row.get(field)
            if value is None or isinstance(value, str):
                continue
            if isinstance(value, float) and math.isnan(value):
                continue
            value = float(value)
            if value < lo:
                lo = value
            if value > hi:
                hi = value
        if lo > hi:
            return [None, None]
        return [lo, hi]

    def compute_value_batch(self, batch, params, signals):
        field = params.get("field")
        if not field:
            raise TransformError("extent requires 'field'")
        column = batch.columns.get(field)
        if column is None or column.type is SQLType.VARCHAR:
            return [None, None]
        # min/max are associative, so a chunked (or disk-backed) column
        # reduces chunk by chunk without ever consolidating.
        lo = math.inf
        hi = -math.inf
        for start, stop, piece in column.iter_chunks():
            values = piece.data[piece.valid]
            if column.type is SQLType.BOOLEAN:
                values = values.astype(np.float64)
            else:
                values = values[~np.isnan(values)]
            if values.size:
                lo = min(lo, float(values.min()))
                hi = max(hi, float(values.max()))
            column.release(start, stop)
        if lo > hi:
            return [None, None]
        return [lo, hi]


@register_transform("bin")
class BinTransform(Transform):
    """Assign bin boundaries bin0/bin1 per row (Vega `bin`)."""

    # row-local once 'extent' is a resolved parameter value
    streaming = True

    def transform(self, rows, params, signals):
        field = params.get("field")
        if not field:
            raise TransformError("bin requires 'field'")
        extent = params.get("extent")
        if extent is None:
            raise TransformError("bin requires an 'extent' parameter")
        as_fields = params.get("as", ["bin0", "bin1"])
        if extent[0] is None:
            # A [None, None] extent means the upstream data had no numeric
            # values (e.g. an empty dataset): every row gets null bins.
            bin0_name, bin1_name = as_fields
            out = []
            for row in rows:
                derived = dict(row)
                derived[bin0_name] = None
                derived[bin1_name] = None
                out.append(derived)
            return out
        start, stop, step = bin_params(
            extent,
            maxbins=params.get("maxbins", 20),
            step=params.get("step"),
            nice=params.get("nice", True),
            minstep=params.get("minstep", 0.0),
        )
        bin0_name, bin1_name = as_fields
        out = []
        for row in rows:
            value = row.get(field)
            derived = dict(row)
            if value is None or isinstance(value, str) or (
                isinstance(value, float) and math.isnan(value)
            ):
                derived[bin0_name] = None
                derived[bin1_name] = None
            else:
                bin0 = bin_index(float(value), start, step)
                # Clamp the top edge: values == stop land in the last bin.
                if bin0 >= stop:
                    bin0 = stop - step
                derived[bin0_name] = bin0
                derived[bin1_name] = bin0 + step
            out.append(derived)
        return out

    def transform_batch(self, batch, params, signals):
        field = params.get("field")
        if not field:
            raise TransformError("bin requires 'field'")
        extent = params.get("extent")
        if extent is None:
            raise TransformError("bin requires an 'extent' parameter")
        as_fields = params.get("as", ["bin0", "bin1"])
        bin0_name, bin1_name = as_fields
        count = batch.num_rows
        out = ColumnBatch(batch.columns)
        if not out.columns:
            out._num_rows = count
        if extent[0] is None:
            out.set_column(bin0_name, Column.nulls(SQLType.DOUBLE, count))
            out.set_column(bin1_name, Column.nulls(SQLType.DOUBLE, count))
            return out
        start, stop, step = bin_params(
            extent,
            maxbins=params.get("maxbins", 20),
            step=params.get("step"),
            nice=params.get("nice", True),
            minstep=params.get("minstep", 0.0),
        )
        column = batch.columns.get(field)
        if column is None or column.type is SQLType.VARCHAR:
            # every value is missing or a string: all bins are null
            view = np.full(count, np.nan)
        elif column.type is SQLType.BOOLEAN:
            view = np.where(column.valid,
                            column.data.astype(np.float64), np.nan)
        else:
            view = np.where(column.valid, column.data, np.nan)
        if np.isinf(view).any():
            # math.floor(inf) raises in the row path
            raise Unvectorizable("infinite bin input")
        with np.errstate(invalid="ignore"):
            # identical IEEE double arithmetic to bin_index()
            bin0 = start + np.floor((view - start) / step) * step
            # Clamp the top edge: values == stop land in the last bin.
            bin0 = np.where(bin0 >= stop, stop - step, bin0)
        missing = np.isnan(bin0)
        valid = ~missing
        out.set_column(bin0_name, Column(
            SQLType.DOUBLE, np.where(missing, 0.0, bin0), valid))
        out.set_column(bin1_name, Column(
            SQLType.DOUBLE, np.where(missing, 0.0, bin0 + step), valid))
        return out
