"""Errors raised by the embedded SQL engine."""


class EngineError(Exception):
    """Base class for all engine errors."""


class SQLSyntaxError(EngineError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message, position=None):
        self.position = position
        if position is not None:
            message = "{} (at position {})".format(message, position)
        super().__init__(message)


class CatalogError(EngineError):
    """Unknown table, duplicate table, or unknown column."""


class PlanError(EngineError):
    """The query is well-formed SQL but cannot be planned.

    Examples: non-aggregated column outside GROUP BY, aggregate in WHERE.
    """


class ExecutionError(EngineError):
    """A runtime failure while executing a physical plan."""


class TypeMismatchError(ExecutionError):
    """An operator received a column of an unexpected type."""
