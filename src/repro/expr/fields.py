"""Static analysis over expression ASTs.

The spec->dataflow compiler needs to know which datum fields an expression
touches (for projection pruning) and which signals it references (to wire
reactive dependencies and to decide whether a transform is parameterized
by interaction state — a key input to the partition planner).
"""

from repro.expr import ast
from repro.expr.functions import CONSTANTS, FUNCTIONS
from repro.expr.parser import parse


def _as_node(source):
    return source if isinstance(source, ast.Node) else parse(source)


def datum_fields(source):
    """Return the set of top-level ``datum`` field names referenced.

    Computed accesses with non-constant keys (``datum[someSignal]``) are
    reported via :func:`has_dynamic_field_access` instead, since the field
    set cannot be determined statically.
    """
    fields = set()
    for node in ast.walk(_as_node(source)):
        if not isinstance(node, ast.Member):
            continue
        if isinstance(node.obj, ast.Identifier) and node.obj.name == "datum":
            if isinstance(node.prop, ast.Literal) and isinstance(node.prop.value, str):
                fields.add(node.prop.value)
    return fields


def has_dynamic_field_access(source):
    """True if the expression accesses datum with a non-literal key."""
    for node in ast.walk(_as_node(source)):
        if not isinstance(node, ast.Member):
            continue
        if isinstance(node.obj, ast.Identifier) and node.obj.name == "datum":
            if not isinstance(node.prop, ast.Literal):
                return True
    return False


def signal_refs(source, known_signals=None):
    """Return the set of bare identifiers that must be signal references.

    ``datum``, builtin constants, and function names are excluded.  When
    ``known_signals`` is given, the result is intersected with it so that
    typos surface as evaluation errors rather than phantom dependencies.
    """
    refs = set()
    for node in ast.walk(_as_node(source)):
        if isinstance(node, ast.Identifier):
            name = node.name
            if name == "datum" or name in CONSTANTS or name in FUNCTIONS:
                continue
            refs.add(name)
    if known_signals is not None:
        refs &= set(known_signals)
    return refs


def is_constant(source):
    """True when the expression references neither datum nor any signal."""
    node = _as_node(source)
    if has_dynamic_field_access(node):
        return False
    return not datum_fields(node) and not signal_refs(node)
