"""Tile eligibility: recognize brushed bin-aggregate pipelines.

A sink qualifies for the data-tile index when its chain looks like::

    [static prefix: filter/formula]*
    [brush filter]+          -- 1-D or 2-D range predicates over signals
    [static bin]?            -- literal extent/maxbins (the chart's bins)
    aggregate                -- decomposable ops only
    [static post steps]*

The brush filters are the only steps allowed to read the brush signals;
everything the cube bakes in (prefix, bin, aggregate) must be static with
respect to them, so a brush event can be answered by re-slicing the cube
instead of re-running the chain.  Detection is conservative: any shape it
does not recognize falls back to the ordinary requery path, which is
always correct.
"""

from dataclasses import dataclass, field
from typing import List, Optional

from repro.data.types import SQLType
from repro.dataflow.operator import DataRef, OperatorRef, SignalRef
from repro.dataflow.transforms.aggregate import _measures
from repro.dataflow.transforms.base import ValueTransform
from repro.expr import ast
from repro.expr.parser import parse

#: aggregate ops the cube can decompose (merge partials of).  distinct,
#: variance, median etc. are not decomposable from per-bin partials.
SUPPORTED_MEASURES = {
    "count", "sum", "mean", "average", "min", "max", "valid", "missing",
}

_COMPARISON_OPS = ("<", "<=", ">", ">=")
#: flipped operator when the datum field is on the right-hand side
_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


class Ineligible(Exception):
    """A filter expression does not have the brush shape."""


@dataclass
class BrushComparison:
    """One range comparison against the brush field, normalized so the
    field is conceptually on the left: ``datum.f  <op>  bound``."""

    op: str
    bound: object  # datum-free expression AST


@dataclass
class BrushAxis:
    """All brush predicates over one field."""

    field: str
    exprs: List[object] = field(default_factory=list)  # parsed filter ASTs
    comparisons: List[BrushComparison] = field(default_factory=list)


@dataclass
class TileCandidate:
    """A tile-indexable sink chain, decomposed."""

    sink: str
    root: str
    prefix: list            # ChainSteps before the brush block
    brush_steps: list       # the brush filter ChainSteps
    first_brush_index: int  # chain index of the first brush step
    axes: List[BrushAxis]   # 1 or 2 brushed fields
    bin_step: Optional[object]   # the chart's own bin ChainStep, if any
    agg_step: object             # the aggregate ChainStep
    post_steps: list             # ChainSteps after the aggregate
    brush_signals: set           # signals read only by the brush filters
    static_deps: set             # signals baked into the cube
    measures: list               # (op, field, name) triples
    groupby: list                # target groupby fields (cube's last axis)


def _contains_datum(node):
    return any(
        isinstance(n, ast.Identifier) and n.name == "datum"
        for n in ast.walk(node)
    )


def _datum_field(node):
    """The field name of a bare ``datum.f`` access; raises otherwise."""
    if (
        isinstance(node, ast.Member)
        and isinstance(node.obj, ast.Identifier)
        and node.obj.name == "datum"
        and isinstance(node.prop, ast.Literal)
        and isinstance(node.prop.value, str)
    ):
        return node.prop.value
    raise Ineligible("datum used outside a bare field access")


def _analyze(node, fields, comparisons):
    """Check the brush shape; returns True when the subtree reads datum.

    Allowed datum-bearing structure: boolean combinators (&&, ||, !) over
    range comparisons with ``datum.f`` on exactly one side; any datum-free
    subtree is a gate and passes through untouched.
    """
    if isinstance(node, ast.Binary) and node.op in ("&&", "||"):
        left = _analyze(node.left, fields, comparisons)
        right = _analyze(node.right, fields, comparisons)
        return left or right
    if isinstance(node, ast.Unary) and node.op == "!":
        return _analyze(node.operand, fields, comparisons)
    if isinstance(node, ast.Binary) and node.op in _COMPARISON_OPS:
        left_datum = _contains_datum(node.left)
        right_datum = _contains_datum(node.right)
        if not left_datum and not right_datum:
            return False
        if left_datum and right_datum:
            raise Ineligible("datum on both comparison sides")
        if left_datum:
            fields.add(_datum_field(node.left))
            comparisons.append(BrushComparison(node.op, node.right))
        else:
            fields.add(_datum_field(node.right))
            comparisons.append(BrushComparison(_FLIP[node.op], node.left))
        return True
    if _contains_datum(node):
        raise Ineligible("datum outside a range comparison")
    return False


def analyze_brush_expr(source):
    """(field, parsed AST, comparisons) for a brush-shaped filter, or
    raises :class:`Ineligible`."""
    node = parse(source)
    fields = set()
    comparisons = []
    if not _analyze(node, fields, comparisons):
        raise Ineligible("no datum comparison")
    if len(fields) != 1:
        raise Ineligible("brush step must range over exactly one field")
    return fields.pop(), node, comparisons


def _has_refs(value):
    """Whether a params value (recursively) contains dynamic references."""
    if isinstance(value, (SignalRef, OperatorRef, DataRef)):
        return True
    if isinstance(value, dict):
        return any(_has_refs(item) for item in value.values())
    if isinstance(value, (list, tuple)):
        return any(_has_refs(item) for item in value)
    return False


def _is_static_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def detect_candidate(session, sink, state):
    """(TileCandidate, reason) for an eligible sink, else (None, reason)."""
    steps = state.steps
    root = state.root
    known = set(session.signals)
    stats = session.table_stats.get(root)
    if stats is None:
        return None, "no statistics for root table"

    # -- locate the brush filters -------------------------------------------
    brush_info = {}
    for position, step in enumerate(steps):
        if step.spec_type != "filter":
            continue
        expr = step.operator.params.get("expr")
        if not isinstance(expr, str):
            continue
        signals = step.operator.signal_dependencies(known)
        if not signals:
            continue  # a static filter belongs to the prefix
        try:
            brush_field, node, comparisons = analyze_brush_expr(expr)
        except Exception:
            return None, "interactive filter is not a range brush"
        brush_info[position] = (brush_field, node, comparisons, signals)
    if not brush_info:
        return None, "no interactive brush filter"
    positions = sorted(brush_info)
    first, last = positions[0], positions[-1]
    if positions != list(range(first, last + 1)):
        return None, "brush filters are not contiguous"

    # -- static prefix -------------------------------------------------------
    prefix = steps[:first]
    for step in prefix:
        if isinstance(step.operator, ValueTransform):
            return None, "value transform before the brush"
        if step.spec_type not in ("filter", "formula"):
            return None, "untileable prefix step {!r}".format(step.spec_type)
        if _has_refs(step.operator.params):
            return None, "prefix step has operator/data references"

    # -- axes ----------------------------------------------------------------
    axes = {}
    order = []
    for position in positions:
        brush_field, node, comparisons, _ = brush_info[position]
        if brush_field not in axes:
            axes[brush_field] = BrushAxis(field=brush_field)
            order.append(brush_field)
        axes[brush_field].exprs.append(node)
        axes[brush_field].comparisons.extend(comparisons)
    if len(order) > 2:
        return None, "brush spans more than two fields"
    for name in order:
        column = stats.columns.get(name)
        if column is None:
            return None, "brush field {!r} is not a root column".format(name)
        if column.type is not SQLType.DOUBLE:
            return None, "brush field {!r} is not numeric".format(name)
        for step in prefix:
            if (
                step.spec_type == "formula"
                and step.operator.params.get("as") == name
            ):
                return None, "prefix overwrites the brush field"

    # -- suffix: [bin]? aggregate post* --------------------------------------
    rest = steps[last + 1:]
    if not rest:
        return None, "no aggregate after the brush"
    bin_step = None
    position = 0
    if rest[0].spec_type == "bin":
        bin_step = rest[0]
        position = 1
    if position >= len(rest) or rest[position].spec_type != "aggregate":
        return None, "brush is not followed by an aggregate"
    agg_step = rest[position]
    post_steps = rest[position + 1:]

    bin_outputs = set()
    if bin_step is not None:
        params = bin_step.operator.params
        if _has_refs(params):
            return None, "bin parameters are dynamic"
        extent = params.get("extent")
        if (
            not isinstance(extent, (list, tuple))
            or len(extent) != 2
            or not all(_is_static_number(v) for v in extent)
        ):
            return None, "bin extent is not a static numeric range"
        as_fields = params.get("as", ["bin0", "bin1"])
        if (
            not isinstance(as_fields, (list, tuple))
            or len(as_fields) != 2
            or not all(isinstance(v, str) for v in as_fields)
        ):
            return None, "bin 'as' is not a pair of names"
        bin_outputs = set(as_fields)

    agg_params = agg_step.operator.params
    if _has_refs(agg_params):
        return None, "aggregate parameters are dynamic"
    try:
        measures = _measures(agg_params)
    except Exception:
        return None, "malformed aggregate parameters"
    groupby = list(agg_params.get("groupby") or [])
    for op, measure_field, _name in measures:
        if op not in SUPPORTED_MEASURES:
            return None, "aggregate op {!r} is not decomposable".format(op)
        if measure_field is None:
            if op != "count":
                return None, "field-less op {!r}".format(op)
            continue
        if op in ("count", "valid", "missing"):
            continue  # type-agnostic: non-NULL counting only
        if measure_field in bin_outputs:
            continue  # numeric by construction
        column = stats.columns.get(measure_field)
        if column is None or column.type is not SQLType.DOUBLE:
            return None, (
                "measure field {!r} is not a numeric root column".format(
                    measure_field)
            )

    for step in post_steps:
        if _has_refs(step.operator.params):
            return None, "post-aggregate step has dynamic references"

    # -- signal separation ---------------------------------------------------
    brush_signals = set()
    for position in positions:
        brush_signals |= brush_info[position][3]
    static_steps = list(prefix)
    if bin_step is not None:
        static_steps.append(bin_step)
    static_steps.append(agg_step)
    static_deps = set()
    for step in static_steps:
        static_deps |= step.operator.signal_dependencies(known)
    if static_deps & brush_signals:
        return None, "a brush signal feeds a baked-in step"

    candidate = TileCandidate(
        sink=sink,
        root=root,
        prefix=prefix,
        brush_steps=[steps[p] for p in positions],
        first_brush_index=first,
        axes=[axes[name] for name in order],
        bin_step=bin_step,
        agg_step=agg_step,
        post_steps=post_steps,
        brush_signals=brush_signals,
        static_deps=static_deps,
        measures=measures,
        groupby=groupby,
    )
    return candidate, "tiled"
