"""E8 (ablation) — cost model accuracy: estimated vs measured.

The partitioning decision (§2.2 step 2) is only as good as the cost
model behind it.  This ablation, called out in DESIGN.md, measures every
cut of the flights pipeline and compares the optimizer's estimates
against measured latency — both with the shipped default constants and
with on-machine calibration (:mod:`repro.planner.calibrate`).

Pass criteria: the *ranking* of cuts by estimate matches the measured
ranking (the optimizer picks the measured-best cut), and estimates are
within an order of magnitude.
"""

from conftest import print_header, print_rows, scaled

from repro.core import VegaPlus
from repro.datagen import generate_flights
from repro.planner import calibrate
from repro.spec import flights_histogram_spec


def test_e8_cost_model_accuracy(benchmark):
    table = generate_flights(scaled(100_000))

    for label, cost_params in (
        ("default constants", None),
        ("calibrated", calibrate(client_rows=5_000, server_rows=50_000)),
    ):
        session = VegaPlus(
            flights_histogram_spec(), data={"flights": table},
            latency_ms=20, cost_params=cost_params,
        )
        rows = []
        estimated = {}
        measured = {}
        for cut in range(4):
            plan = session.custom_plan({"binned": cut},
                                       label="cut{}".format(cut))
            estimate = plan.estimate.total
            session.cache.clear()
            result = session.run_with_plan(plan)
            estimated[cut] = estimate
            measured[cut] = result.total_seconds
            ratio = estimate / max(result.total_seconds, 1e-9)
            rows.append([
                cut, "{:.4f}".format(estimate),
                "{:.4f}".format(result.total_seconds),
                "{:.2f}".format(ratio),
            ])
        print_header("E8: cost model accuracy ({})".format(label))
        print_rows(["cut", "estimated(s)", "measured(s)", "est/meas"], rows)

        best_estimated = min(estimated, key=estimated.get)
        best_measured = min(measured, key=measured.get)
        print("best cut: estimated={}, measured={}".format(
            best_estimated, best_measured))
        assert best_estimated == best_measured, (
            "cost model ranked cut {} best but cut {} measured best".format(
                best_estimated, best_measured)
        )
        for cut in range(4):
            ratio = estimated[cut] / max(measured[cut], 1e-9)
            assert 0.1 < ratio < 10.0, (
                "estimate off by >10x at cut {}".format(cut)
            )

    def optimize_with_calibration():
        params = calibrate(client_rows=5_000, server_rows=50_000)
        session = VegaPlus(
            flights_histogram_spec(), data={"flights": table},
            cost_params=params,
        )
        return session.optimize()

    benchmark.pedantic(optimize_with_calibration, rounds=3, iterations=1)
