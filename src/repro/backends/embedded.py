"""Backend adapter over the embedded columnar engine."""

from repro.backends.base import Backend, BackendError
from repro.engine.database import Database
from repro.engine.errors import EngineError


class EmbeddedBackend(Backend):
    """The in-process analytical engine (DuckDB stand-in)."""

    name = "embedded"

    def __init__(self, enable_pushdown=True, enable_pruning=True,
                 parallelism=None, morsel_rows=None):
        self.db = Database(
            enable_pushdown=enable_pushdown, enable_pruning=enable_pruning,
            parallelism=parallelism, morsel_rows=morsel_rows,
        )
        #: resolved engine worker count (1 = serial); the session reads
        #: this to make the planner cost model parallelism-aware
        self.parallelism = self.db.parallelism

    def load_table(self, name, table):
        self.db.load_table(name, table, replace=True)

    def execute(self, sql):
        def run():
            try:
                result = self.db.execute(sql)
            except EngineError as exc:
                raise BackendError(str(exc)) from exc
            if result is None or isinstance(result, (int, str)):
                raise BackendError("execute() expects a SELECT statement")
            return result

        return self._timed(run, sql)

    def explain(self, sql):
        try:
            return self.db.explain(sql)
        except EngineError as exc:
            raise BackendError(str(exc)) from exc

    def explain_analyze(self, sql):
        """Plan annotated with measured per-node rows/times (the server
        half of the demo's execution-plan performance chart)."""
        try:
            return self.db.explain_analyze(sql)
        except EngineError as exc:
            raise BackendError(str(exc)) from exc

    def explain_analyze_data(self, sql):
        """Structured EXPLAIN ANALYZE: (result Table, per-node dicts)."""
        try:
            return self.db.explain_analyze_data(sql)
        except EngineError as exc:
            raise BackendError(str(exc)) from exc

    def execute_with_node_stats(self, sql):
        """Timed execute that also collects per-plan-node statistics —
        the traced path: one engine execution serves both the result and
        its EXPLAIN ANALYZE rows."""
        import time

        start = time.perf_counter()
        try:
            table, nodes = self.db.explain_analyze_data(sql)
        except EngineError as exc:
            raise BackendError(str(exc)) from exc
        elapsed = time.perf_counter() - start
        from repro.backends.base import QueryResult

        return QueryResult(table=table, seconds=elapsed, sql=sql), nodes

    def table_names(self):
        return self.db.table_names()

    def table_schema(self, name):
        try:
            return tuple(self.db.table(name).schema())
        except EngineError:
            return None

    def row_count(self, name):
        return self.db.table(name).num_rows

    def stats(self, name):
        """Expose engine statistics for the partition planner."""
        return self.db.stats(name)
