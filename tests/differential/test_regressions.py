"""Pinned regression tests for equivalence bugs the differential fuzzer
surfaced.  Each seed below produced a genuine client/server or
backend/backend divergence when first fuzzed; the fix is described on the
test.  ``check_case`` re-runs the full oracle (every partition cut on
every backend plus the optimizer metamorphic check), so a regression in
any of the fixed layers re-fails its seed here.
"""

import pytest

from repro.fuzz import generate_case
from repro.fuzz.oracle import check_case

pytestmark = pytest.mark.differential


def _assert_clean(seed):
    report = check_case(generate_case(seed))
    assert not report.mismatches, report.describe()


def test_seed_0_lookup_default_type_mismatch():
    """Lookup with a numeric ``default`` over a string value column: the
    embedded engine rejected the CASE at execution time while sqlite
    silently coerced the default to text.  Fixed by typing LookupTable
    markers and making type-mismatched defaults Untranslatable (the
    planner pins the lookup to the client)."""
    _assert_clean(0)


def test_seed_2_window_sum_over_all_null_partition():
    """joinaggregate sum over an all-NULL partition: the client returns
    0 (Vega sum-of-nothing) while a bare windowed SUM returns NULL.
    Fixed by COALESCE(..., 0) around windowed SUM in the translator."""
    _assert_clean(2)


def test_seed_34_null_unsafe_inequality():
    """``datum.k != 'x'`` with NULL k: JS keeps the row (true) while
    SQL ``<>`` drops it (NULL).  Fixed by emitting COALESCE-wrapped
    comparisons that produce total booleans (safe under NOT)."""
    _assert_clean(34)


def test_seed_36_stack_magnitude_of_negatives():
    """Stack over negative values: Vega stacks |value| magnitudes while
    the translation summed raw values, flipping segment signs.  Fixed by
    ABS+COALESCE magnitudes in the stack translation (and NaN-as-zero on
    the client side)."""
    _assert_clean(36)


def test_seed_39_pushdown_below_window_function():
    """Predicate pushdown moved a filter inside the derived table whose
    SELECT list contained a window function, shrinking the window's row
    set (joinaggregate-then-filter computed the mean over post-filter
    groups).  Fixed by refusing pushdown below window functions.  Also
    pins the NaN-vs-NULL group-key fold in the client aggregate."""
    _assert_clean(39)


def test_seed_700050_bin_top_edge_clamp():
    """Bin over a zero-width extent: bin_params widens stop to lo+1, so
    the translation's blanket ``LEAST(raw, stop - step)`` clamped every
    bucket below the start.  Fixed by a CASE clamp that mirrors the
    client exactly (only raw >= stop folds into the last bin)."""
    _assert_clean(700050)


def test_seed_123403708_empty_dataset_schema():
    """An empty dataset (zero rows, so zero known columns) diverged three
    ways: sqlite raised at load time on ``CREATE TABLE t ()``, the
    zero-column base projection rendered invalid ``SELECT FROM t``, and a
    pushed-down window transform referencing a never-materialized column
    failed the server's static binding while the client succeeded
    vacuously on zero rows.  Fixed by a placeholder column in the sqlite
    loader, a constant placeholder projection, and treating transforms
    over a zero-column schema as Untranslatable (pinned to the client)."""
    _assert_clean(123403708)


def test_seed_700105_clamp_null_folds_to_hi():
    """``clamp(datum.f2, -1, 5)`` over a NULL input: the client coerces
    through ``_number`` (NULL -> NaN) and Python's min/max keep the
    non-NaN side, so clamp(NULL) yields the *hi* bound — while the SQL
    translation ``LEAST(GREATEST(x, lo), hi)`` yields NULL.  Downstream
    extent+bin then computed different bucket widths per cut.  Fixed by
    a CASE translation that folds NULL to the hi bound (literal bounds
    only; computed bounds are pinned to the client).

    The shrunk repro also exposed a second bug this commit fixes: a
    formula/filter expression over a column absent from the input schema
    diverged three ways (client reads missing fields as NULL, the
    embedded engine errors on the unknown column, sqlite's
    double-quoted-string fallback reads ``"m1"`` as the literal
    ``'m1'``).  ``_compile_expr`` now refuses such expressions, pinning
    the step to the client."""
    _assert_clean(700105)


def test_seed_80802431_sqlite_quoted_literal_fallback():
    """A mark/scale referencing a field absent from the dataset: the
    embedded engine raised ``unknown column`` while SQLite's legacy
    double-quoted-string fallback read ``"y3_top"`` as the *literal*
    ``'y3_top'`` and returned fake rows — a success-vs-error outcome
    split.  Python's stdlib sqlite3 cannot switch the misfeature off, so
    the adapter now validates every quoted identifier against the loaded
    schemas (plus aliases the statement itself defines; a reference's
    own trailing alias does not vouch for it) and raises like the
    embedded engine.  All configurations now fail consistently."""
    _assert_clean(80802431)


def test_seed_700152_clamp_null_after_variance():
    """Same clamp-over-NULL class as seed 700105, reached through
    ``clamp(datum.variance_f2, -1, 5)`` where the variance aggregate
    yields NULL for single-row groups: server cuts produced NULL, client
    cuts produced 5.0.  Pinned by the NULL-folding CASE clamp
    translation."""
    _assert_clean(700152)


# -- tiles-vs-direct axis ----------------------------------------------------


def _assert_tiles_clean(seed):
    from repro.fuzz.tiles import check_tiles_case, generate_tiles_case

    report = check_tiles_case(generate_tiles_case(seed))
    assert report.ok, report.describe()


def test_tiles_seed_1_ordered_comparison_against_null_literal():
    """A brush bound cleared to null: the client evaluator coerces null
    to NaN, so ``datum.bx >= lo`` is uniformly false — while the SQL
    compiler's null-literal special case rewrote the ordered comparison
    to ``IS NOT NULL``, keeping every non-null row.  The tile path
    (representative-evaluation membership, client semantics) disagreed
    with the direct requery until the translator emitted FALSE for
    ordered comparisons against a null literal."""
    _assert_tiles_clean(1)


def test_tiles_seed_0_two_axis_brush_with_null_bounds():
    """2-D brush over bx/by grouped by a nullable category, with null
    bounds arriving mid-sequence: pins separable-axis membership, the
    NaN-vs-NULL group-key fold in cube group keys, and null-slot
    handling on both axes."""
    _assert_tiles_clean(0)


def test_tiles_seed_12_append_delta_patch():
    """Mid-sequence streaming append into a binned 2-D brush target: the
    delta pulse must patch the cube in place (bin the incoming rows,
    extend the group dictionary) and keep agreeing with a direct requery
    over the merged table."""
    _assert_tiles_clean(12)
