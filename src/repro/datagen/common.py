"""Shared helpers for the synthetic dataset generators.

Generators emit :class:`repro.data.ColumnBatch` directly from their
numpy arrays — data is born columnar and stays columnar into the
backend and the client dataflow; row dicts exist only when a caller
explicitly asks (``as_rows=True``).
"""

import numpy as np

from repro.data import Column, ColumnBatch, SQLType


def columns_to_batch(**named_arrays):
    """Build a ColumnBatch from numpy arrays / lists of values.

    Float arrays keep their buffers (NaN becomes NULL); integer arrays
    widen to float64; anything else goes through value inference.
    """
    batch = ColumnBatch()
    for name, values in named_arrays.items():
        if isinstance(values, np.ndarray) and values.dtype.kind == "f":
            valid = ~np.isnan(values)
            data = np.where(valid, values, 0.0)
            batch.add_column(name, Column(SQLType.DOUBLE, data, valid))
        elif isinstance(values, np.ndarray) and values.dtype.kind in "iu":
            batch.add_column(
                name, Column(SQLType.DOUBLE, values.astype(np.float64))
            )
        else:
            batch.add_column(name, Column.from_values(list(values)))
    return batch


#: Historical name (the batch class is also the engine Table).
columns_to_table = columns_to_batch


def table_to_rows(table):
    """Row dicts for callers that want the list-of-dict view."""
    return table.to_rows()
