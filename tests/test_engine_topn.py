"""Tests for the top-N (ORDER BY + LIMIT) partial-sort fast path."""

import numpy as np
import pytest

from repro.engine import Database, Table
from repro.engine.binder import bind
from repro.engine.logical import Limit, Sort, walk_plan
from repro.engine.optimizer import optimize
from repro.engine.parser import parse_select


@pytest.fixture
def db():
    rng = np.random.default_rng(3)
    database = Database()
    database.load_table(
        "t",
        Table.from_columns(
            x=list(rng.normal(size=500)) + [None] * 5,
            k=[("key%d" % (i % 50)) for i in range(505)],
        ),
    )
    return database


class TestAnnotation:
    def test_limit_over_sort_annotated(self, db):
        plan = bind(parse_select("SELECT x FROM t ORDER BY x LIMIT 10"),
                    db.catalog)
        plan = optimize(plan, db.catalog)
        sort = next(n for n in walk_plan(plan) if isinstance(n, Sort))
        assert sort.limit_hint == 10

    def test_offset_included_in_hint(self, db):
        plan = bind(
            parse_select("SELECT x FROM t ORDER BY x LIMIT 10 OFFSET 5"),
            db.catalog,
        )
        plan = optimize(plan, db.catalog)
        sort = next(n for n in walk_plan(plan) if isinstance(n, Sort))
        assert sort.limit_hint == 15

    def test_sort_without_limit_not_annotated(self, db):
        plan = bind(parse_select("SELECT x FROM t ORDER BY x"), db.catalog)
        plan = optimize(plan, db.catalog)
        sort = next(n for n in walk_plan(plan) if isinstance(n, Sort))
        assert sort.limit_hint is None


class TestCorrectness:
    def full_sort(self, db, sql_order, limit):
        full = db.execute(
            "SELECT x FROM t ORDER BY x {}".format(sql_order)
        ).to_rows()
        return full[:limit]

    @pytest.mark.parametrize("order", ["ASC", "DESC"])
    def test_topn_matches_full_sort(self, db, order):
        top = db.execute(
            "SELECT x FROM t ORDER BY x {} LIMIT 20".format(order)
        ).to_rows()
        assert top == self.full_sort(db, order, 20)

    def test_topn_with_offset(self, db):
        top = db.execute(
            "SELECT x FROM t ORDER BY x ASC LIMIT 10 OFFSET 7"
        ).to_rows()
        assert top == self.full_sort(db, "ASC", 17)[7:]

    def test_topn_varchar_key(self, db):
        top = db.execute(
            "SELECT k FROM t ORDER BY k ASC LIMIT 15"
        ).to_rows()
        full = db.execute("SELECT k FROM t ORDER BY k ASC").to_rows()
        assert top == full[:15]

    def test_nulls_respected_desc(self, db):
        # DESC: NULLs are largest, so they lead the top-N.
        top = db.execute(
            "SELECT x FROM t ORDER BY x DESC LIMIT 8"
        ).to_rows()
        assert [row["x"] for row in top[:5]] == [None] * 5

    def test_nulls_last_asc(self, db):
        top = db.execute(
            "SELECT x FROM t ORDER BY x ASC LIMIT 20"
        ).to_rows()
        assert all(row["x"] is not None for row in top)

    def test_multi_key_falls_back(self, db):
        # Multi-key sorts skip the fast path but stay correct.
        top = db.execute(
            "SELECT k, x FROM t ORDER BY k ASC, x DESC LIMIT 10"
        ).to_rows()
        full = db.execute(
            "SELECT k, x FROM t ORDER BY k ASC, x DESC"
        ).to_rows()
        assert top == full[:10]

    def test_limit_larger_than_table(self, db):
        rows = db.execute(
            "SELECT x FROM t ORDER BY x LIMIT 10000"
        ).to_rows()
        assert len(rows) == 505
