"""Partition optimizer: choose the client/server cut per pipeline.

For every mark-consumed dataset the optimizer resolves its transform
chain back to a root table, probes how long a prefix is SQL-translatable
under the current signal values, estimates cost for every legal cut, and
keeps the cheapest.  Linear pipelines make exhaustive cut enumeration
cheap — exactly the structure Vega specs compile to.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dataflow.operator import DataRef, OperatorRef, SignalRef
from repro.engine import sqlast
from repro.expr.evaluator import Evaluator
from repro.expr.parser import parse
from repro.planner.cardinality import estimate_step, from_table_stats
from repro.planner.costmodel import CostModel, CostParameters
from repro.planner.plans import CostBreakdown, DatasetPlan, PartitionPlan
from repro.sqlgen.translate import Untranslatable, translate_transform


class PlanningError(Exception):
    """The spec cannot be planned (e.g. no stats for a root table)."""


#: placeholder extent used only to probe bin translatability
_PROBE_EXTENT = [0.0, 1.0]


@dataclass
class ChainStep:
    """One transform step of a resolved chain."""

    dataset: str
    index: int  # index within its dataset pipeline
    spec_type: str
    params: dict  # planning-resolved parameters
    operator: object  # the dataflow operator


def resolve_chain(compiled, sink):
    """Walk ``sink`` back to its root dataset; returns (root, steps)."""
    spec = compiled.spec
    chain: List[ChainStep] = []
    name = sink
    visited = set()
    while True:
        if name in visited:
            raise PlanningError("dataset cycle at {!r}".format(name))
        visited.add(name)
        dataset = spec.dataset(name)
        pipeline = compiled.pipelines[name]
        steps = []
        offset = 1 if dataset.source is None else 0  # skip the DataSource op
        for index, step_spec in enumerate(dataset.transform):
            operator = pipeline[offset + index]
            steps.append(
                ChainStep(
                    dataset=name,
                    index=index,
                    spec_type=step_spec.type,
                    params={},
                    operator=operator,
                )
            )
        chain = steps + chain
        if dataset.source is None:
            return name, chain
        name = dataset.source


def resolve_planning_params(operator, signals, server_tables=None):
    """Resolve operator params for planning: signal expressions evaluate,
    operator refs become probe placeholders, and data refs to transform-
    free root datasets resolve to LookupTable markers (enabling lookup's
    LEFT JOIN translation)."""
    evaluator = Evaluator(signals=signals)
    server_tables = server_tables or set()

    def resolve(value):
        if isinstance(value, SignalRef):
            try:
                return evaluator.evaluate(parse(value.expression))
            except Exception:
                return None
        if isinstance(value, OperatorRef):
            return list(_PROBE_EXTENT)
        if isinstance(value, DataRef):
            return _lookup_table_marker(value.operator, server_tables)
        if isinstance(value, dict):
            return {key: resolve(item) for key, item in value.items()}
        if isinstance(value, list):
            return [resolve(item) for item in value]
        return value

    return {key: resolve(value) for key, value in operator.params.items()}


def _lookup_table_marker(operator, server_tables):
    """LookupTable marker when ``operator`` is the source of a transform-
    free root dataset resident on the server; None otherwise.

    ``server_tables`` is either a set of table names or a mapping
    name -> TableStats; with stats, the marker carries column types so
    type-sensitive translations (lookup defaults) can be validated."""
    from repro.dataflow.transforms.base import DataSource
    from repro.sqlgen.translate import LookupTable

    if not isinstance(operator, DataSource):
        return None
    name = operator.name
    if not name.endswith(":source"):
        return None
    table = name[: -len(":source")]
    if table not in server_tables:
        return None
    types = ()
    if isinstance(server_tables, dict):
        stats = server_tables[table]
        types = tuple(
            (column, _type_kind(column_stats.type))
            for column, column_stats in stats.columns.items()
        )
    return LookupTable(table, types=types)


def _type_kind(sql_type):
    """Engine SQLType -> coarse kind tag used by translation checks."""
    name = getattr(sql_type, "name", str(sql_type))
    return {"DOUBLE": "num", "VARCHAR": "str", "BOOLEAN": "bool"}.get(
        name, "other"
    )


def _zero_row_table(column_types):
    from repro.engine import Table
    from repro.engine.table import Column

    table = Table()
    for name, sql_type in column_types:
        table.add_column(name, Column.from_values([], sql_type))
    return table


def _probe_database(server_tables, base_types):
    """A zero-row embedded Database mirroring the server schemas.

    Engine type errors (``cannot compare DOUBLE with VARCHAR``, unknown
    columns) depend only on column types, never on row values, so
    executing a candidate step against an empty table with the *real*
    schema proves the server will accept it — without touching data."""
    from repro.engine import Database

    database = Database()
    database.load_table("__probe", _zero_row_table(base_types))
    if isinstance(server_tables, dict):
        for name, stats in server_tables.items():
            database.load_table(
                name,
                _zero_row_table(
                    (column, column_stats.type)
                    for column, column_stats in stats.columns.items()
                ),
            )
    return database


def translatable_prefix(steps, base_columns, signals, server_tables=None,
                        base_types=None):
    """Longest SQL-translatable prefix; also returns columns per position.

    With ``base_types`` (the root table's ``(column, SQLType)`` pairs)
    each translated step is additionally *executed* on a zero-row probe
    table carrying the evolving schema.  Translation alone is purely
    syntactic: ``datum.k == 'x'`` translates fine but fails on the server
    when ``k`` is numeric, while the client's loose comparison succeeds —
    a success-vs-error divergence between cuts (differential fuzzer,
    seed 80802431).  The probe run surfaces every schema-driven server
    rejection at planning time, pinning such steps to the client."""
    columns = list(base_columns)
    columns_at = [list(columns)]
    prefix = 0
    probe_db = _probe_database(server_tables, base_types) \
        if base_types is not None else None
    for step in steps:
        params = resolve_planning_params(
            step.operator, signals, server_tables
        )
        step.params = params
        try:
            translation = translate_transform(
                step.spec_type,
                params,
                sqlast.TableRef("__probe"),
                columns,
                signals,
            )
        except Untranslatable:
            break
        except Exception:
            break
        if probe_db is not None:
            try:
                probe_result = probe_db.execute(translation.select.to_sql())
            except Exception:
                break
            if not translation.is_value:
                probe_db.load_table("__probe", probe_result)
        if not translation.is_value:
            columns = translation.columns
        prefix += 1
        columns_at.append(list(columns))
    # Positions beyond the prefix keep the last known schema.
    while len(columns_at) <= len(steps):
        columns_at.append(list(columns))
    return prefix, columns_at


class PartitionOptimizer:
    """Chooses cuts to minimize estimated startup latency (§2.2 step 2)."""

    def __init__(self, channel, cost_params=None, merged=True):
        self.channel = channel
        self.cost_params = cost_params or CostParameters()
        self.model = CostModel(channel, self.cost_params)
        self.merged = merged

    def plan_dataset(self, compiled, sink, stats, signals,
                     forced_cut=None, label=None):
        """Plan one sink dataset; ``forced_cut`` pins the cut (used by the
        dashboard's user-customized plans and by baselines)."""
        root, steps = resolve_chain(compiled, sink)
        if root not in stats:
            raise PlanningError(
                "no statistics for root table {!r}".format(root)
            )
        base = from_table_stats(stats[root])
        prefix, _ = translatable_prefix(
            steps, list(base.columns), signals, server_tables=stats,
            base_types=[
                (column, column_stats.type)
                for column, column_stats in stats[root].columns.items()
            ],
        )

        estimates = [base]
        current = base
        for step in steps:
            current = estimate_step(
                current, step.spec_type, step.params, signals=signals
            )
            estimates.append(current)

        step_types = [step.spec_type for step in steps]
        final_fields = compiled.spec.mark_fields(sink)

        if forced_cut is not None:
            cut = max(0, min(forced_cut, prefix))
            breakdown, transfer = self.model.cut_cost(
                step_types, estimates, cut, merged=self.merged,
                final_fields=final_fields,
            )
            return DatasetPlan(
                dataset=sink, cut=cut, max_cut=prefix, estimate=breakdown,
                transfer_rows=transfer.rows, transfer_bytes=transfer.bytes,
            ), steps, root

        best: Optional[DatasetPlan] = None
        for cut in range(prefix + 1):
            breakdown, transfer = self.model.cut_cost(
                step_types, estimates, cut, merged=self.merged,
                final_fields=final_fields,
            )
            candidate = DatasetPlan(
                dataset=sink, cut=cut, max_cut=prefix, estimate=breakdown,
                transfer_rows=transfer.rows, transfer_bytes=transfer.bytes,
            )
            if best is None or _better(candidate, best):
                best = candidate
        return best, steps, root

    def plan(self, compiled, stats, signals=None, label="optimized",
             forced_cuts=None):
        """Plan all sink datasets; returns a :class:`PartitionPlan`."""
        signals = signals if signals is not None else dict(compiled.flow.signals)
        forced_cuts = forced_cuts or {}
        plan = PartitionPlan(label=label)
        for sink in self.sink_datasets(compiled):
            dataset_plan, _, _ = self.plan_dataset(
                compiled, sink, stats, signals,
                forced_cut=forced_cuts.get(sink),
            )
            plan.datasets[sink] = dataset_plan
        return plan

    def sink_datasets(self, compiled):
        """Datasets consumed by marks (fallback: terminal datasets)."""
        spec = compiled.spec
        sinks = []
        for mark in spec.marks:
            if mark.data and mark.data not in sinks:
                sinks.append(mark.data)
        if sinks:
            return sinks
        sources = {d.source for d in spec.data if d.source}
        return [d.name for d in spec.data if d.name not in sources]


def _better(candidate, incumbent):
    """Cheaper total latency wins; ties prefer fewer transferred bytes."""
    if abs(candidate.estimate.total - incumbent.estimate.total) > 1e-12:
        return candidate.estimate.total < incumbent.estimate.total
    return candidate.transfer_bytes < incumbent.transfer_bytes
