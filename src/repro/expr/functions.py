"""The Vega expression function library.

Implements the deterministic core of Vega's built-in functions: math,
type coercion, strings, regular expressions, dates, arrays, and a few
statistics helpers.  Functions operate on Python values produced by the
evaluator (floats, strs, bools, lists, dicts, ``datetime`` objects, and
``None`` standing in for JS ``null``/``undefined``).
"""

import math
import re
from datetime import datetime, timezone

from repro.expr.errors import ExprEvalError


def _number(value):
    """Coerce to float following (simplified) JS semantics."""
    if value is None:
        return float("nan")
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        text = value.strip()
        if not text:
            return 0.0
        try:
            return float(text)
        except ValueError:
            return float("nan")
    if isinstance(value, datetime):
        return value.timestamp() * 1000.0
    return float("nan")


def _string(value):
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if value.is_integer() and abs(value) < 1e21:
            return str(int(value))
        return repr(value)
    if isinstance(value, list):
        return ",".join(_string(element) for element in value)
    return str(value)


def _boolean(value):
    if isinstance(value, float) and math.isnan(value):
        return False
    return bool(value)


def _datetime_from_ms(ms, utc=False):
    tz = timezone.utc
    dt = datetime.fromtimestamp(ms / 1000.0, tz=tz)
    return dt if utc else dt.astimezone()


def _as_datetime(value):
    if isinstance(value, datetime):
        return value
    number = _number(value)
    if math.isnan(number):
        raise ExprEvalError("cannot interpret {!r} as a date".format(value))
    return _datetime_from_ms(number)


def _clamp(value, lo, hi):
    value, lo, hi = _number(value), _number(lo), _number(hi)
    if lo > hi:
        lo, hi = hi, lo
    return max(lo, min(hi, value))


def _span(array):
    if not array:
        return 0.0
    return _number(array[-1]) - _number(array[0])


def _extent(array):
    numbers = [_number(item) for item in array if item is not None]
    numbers = [number for number in numbers if not math.isnan(number)]
    if not numbers:
        return [None, None]
    return [min(numbers), max(numbers)]


def _peek(array):
    return array[-1] if array else None


def _test(pattern, value, flags=""):
    re_flags = 0
    if "i" in flags:
        re_flags |= re.IGNORECASE
    if "m" in flags:
        re_flags |= re.MULTILINE
    if "s" in flags:
        re_flags |= re.DOTALL
    try:
        return re.search(pattern, _string(value), re_flags) is not None
    except re.error as exc:
        raise ExprEvalError("invalid regular expression: {}".format(exc)) from exc


def _indexof(haystack, needle):
    if isinstance(haystack, list):
        try:
            return float(haystack.index(needle))
        except ValueError:
            return -1.0
    return float(_string(haystack).find(_string(needle)))


def _lastindexof(haystack, needle):
    if isinstance(haystack, list):
        for index in range(len(haystack) - 1, -1, -1):
            if haystack[index] == needle:
                return float(index)
        return -1.0
    return float(_string(haystack).rfind(_string(needle)))


def _substring(value, start, end=None):
    text = _string(value)
    start = int(_number(start))
    end = len(text) if end is None else int(_number(end))
    start = max(0, min(len(text), start))
    end = max(0, min(len(text), end))
    if start > end:
        start, end = end, start
    return text[start:end]


def _slice(value, start, end=None):
    sequence = value if isinstance(value, list) else _string(value)
    start = int(_number(start))
    end = None if end is None else int(_number(end))
    return sequence[slice(start, end)]


def _replace(value, pattern, replacement):
    return _string(value).replace(_string(pattern), _string(replacement), 1)


def _pad(value, length, character=" ", align="right"):
    text = _string(value)
    length = int(_number(length))
    character = _string(character) or " "
    if len(text) >= length:
        return text
    fill = character * (length - len(text))
    if align == "left":
        return text + fill
    if align == "center":
        half = (length - len(text)) // 2
        left = character * half
        right = character * (length - len(text) - half)
        return left + text + right
    return fill + text


def _truncate(value, length, align="right", ellipsis="…"):
    text = _string(value)
    length = int(_number(length))
    if len(text) <= length:
        return text
    if align == "left":
        return ellipsis + text[len(text) - length + len(ellipsis):]
    if align == "center":
        keep = length - len(ellipsis)
        left = keep // 2
        right = keep - left
        return text[:left] + ellipsis + text[len(text) - right:]
    return text[: length - len(ellipsis)] + ellipsis


def _sequence(*args):
    if len(args) == 1:
        start, stop, step = 0.0, _number(args[0]), 1.0
    elif len(args) == 2:
        start, stop, step = _number(args[0]), _number(args[1]), 1.0
    else:
        start, stop, step = _number(args[0]), _number(args[1]), _number(args[2])
    if step == 0:
        raise ExprEvalError("sequence step must be non-zero")
    out = []
    value = start
    if step > 0:
        while value < stop:
            out.append(value)
            value += step
    else:
        while value > stop:
            out.append(value)
            value += step
    return out


def _if(test, then_value, else_value):
    return then_value if _boolean(test) else else_value


def _is_valid(value):
    if value is None:
        return False
    if isinstance(value, float) and math.isnan(value):
        return False
    return True


def _date_part(part):
    def getter(value):
        return float(getattr(_as_datetime(value), part))

    return getter


def _day(value):
    # JS getDay(): 0=Sunday..6=Saturday; Python weekday(): 0=Monday.
    return float((_as_datetime(value).weekday() + 1) % 7)


def _time(value):
    return _as_datetime(value).timestamp() * 1000.0


def _datetime_ctor(*args):
    if not args:
        raise ExprEvalError("datetime requires at least a year")
    if len(args) == 1:
        return _as_datetime(args[0])
    parts = [int(_number(arg)) for arg in args]
    year = parts[0]
    month = parts[1] + 1 if len(parts) > 1 else 1  # JS months are 0-based
    day = parts[2] if len(parts) > 2 else 1
    hour = parts[3] if len(parts) > 3 else 0
    minute = parts[4] if len(parts) > 4 else 0
    second = parts[5] if len(parts) > 5 else 0
    ms = parts[6] if len(parts) > 6 else 0
    return datetime(year, month, day, hour, minute, second, ms * 1000)


def _quarter(value):
    return float((_as_datetime(value).month - 1) // 3 + 1)


def _safe_log(value):
    number = _number(value)
    if number <= 0:
        return float("nan")
    return math.log(number)


def _safe_sqrt(value):
    number = _number(value)
    if number < 0:
        return float("nan")
    return math.sqrt(number)


def _minmax(reducer):
    def fn(*args):
        numbers = [_number(arg) for arg in args]
        if any(math.isnan(number) for number in numbers):
            return float("nan")
        if not numbers:
            return float("nan")
        return reducer(numbers)

    return fn


def _join(array, separator=","):
    if not isinstance(array, list):
        raise ExprEvalError("join expects an array")
    return _string(separator).join(_string(item) for item in array)


def _split(value, separator):
    return _string(value).split(_string(separator))


def _reverse(array):
    if not isinstance(array, list):
        raise ExprEvalError("reverse expects an array")
    return list(reversed(array))


def _sort(array):
    if not isinstance(array, list):
        raise ExprEvalError("sort expects an array")
    return sorted(array, key=_number)


def _in_range(value, range_pair):
    number = _number(value)
    lo, hi = _number(range_pair[0]), _number(range_pair[1])
    if lo > hi:
        lo, hi = hi, lo
    return lo <= number <= hi


FUNCTIONS = {
    # Math
    "abs": lambda value: abs(_number(value)),
    "ceil": lambda value: float(math.ceil(_number(value))),
    "floor": lambda value: float(math.floor(_number(value))),
    "round": lambda value: float(math.floor(_number(value) + 0.5)),
    "trunc": lambda value: float(math.trunc(_number(value))),
    "sqrt": _safe_sqrt,
    "cbrt": lambda value: math.copysign(abs(_number(value)) ** (1 / 3), _number(value)),
    "exp": lambda value: math.exp(_number(value)),
    "log": _safe_log,
    "log2": lambda value: math.log2(_number(value)) if _number(value) > 0 else float("nan"),
    "log10": lambda value: math.log10(_number(value)) if _number(value) > 0 else float("nan"),
    "pow": lambda base, exponent: _number(base) ** _number(exponent),
    "sin": lambda value: math.sin(_number(value)),
    "cos": lambda value: math.cos(_number(value)),
    "tan": lambda value: math.tan(_number(value)),
    "asin": lambda value: math.asin(_number(value)),
    "acos": lambda value: math.acos(_number(value)),
    "atan": lambda value: math.atan(_number(value)),
    "atan2": lambda y, x: math.atan2(_number(y), _number(x)),
    "sign": lambda value: math.copysign(1.0, _number(value)) if _number(value) != 0 else 0.0,
    "min": _minmax(min),
    "max": _minmax(max),
    "clamp": _clamp,
    "hypot": lambda *args: math.hypot(*[_number(arg) for arg in args]),
    # Type checks and coercion
    "isNaN": lambda value: isinstance(_number(value), float) and math.isnan(_number(value)),
    "isFinite": lambda value: math.isfinite(_number(value)),
    "isValid": _is_valid,
    "isArray": lambda value: isinstance(value, list),
    "isBoolean": lambda value: isinstance(value, bool),
    "isNumber": lambda value: isinstance(value, (int, float)) and not isinstance(value, bool),
    "isObject": lambda value: isinstance(value, dict),
    "isString": lambda value: isinstance(value, str),
    "isDate": lambda value: isinstance(value, datetime),
    "toNumber": _number,
    "toString": _string,
    "toBoolean": _boolean,
    "toDate": _time,
    # Control
    "if": _if,
    # Strings
    "length": lambda value: float(len(value)) if isinstance(value, (list, str, dict)) else float("nan"),
    "lower": lambda value: _string(value).lower(),
    "upper": lambda value: _string(value).upper(),
    "trim": lambda value: _string(value).strip(),
    "substring": _substring,
    "slice": _slice,
    "replace": _replace,
    "split": _split,
    "indexof": _indexof,
    "lastindexof": _lastindexof,
    "pad": _pad,
    "truncate": _truncate,
    "parseFloat": _number,
    "parseInt": lambda value: float(int(_number(value))),
    # Regular expressions
    "test": _test,
    "regexp": lambda pattern, flags="": (pattern, flags),
    # Arrays
    "extent": _extent,
    "span": _span,
    "peek": _peek,
    "join": _join,
    "reverse": _reverse,
    "sort": _sort,
    "sequence": _sequence,
    "inrange": _in_range,
    "indexOf": _indexof,
    # Dates
    "now": None,  # installed per-evaluator so it can be frozen for tests
    "datetime": _datetime_ctor,
    "date": lambda value: float(_as_datetime(value).day),
    "day": _day,
    "year": lambda value: float(_as_datetime(value).year),
    "month": lambda value: float(_as_datetime(value).month - 1),  # JS 0-based
    "quarter": _quarter,
    "hours": _date_part("hour"),
    "minutes": _date_part("minute"),
    "seconds": _date_part("second"),
    "milliseconds": lambda value: float(_as_datetime(value).microsecond // 1000),
    "time": _time,
    "dayofyear": lambda value: float(_as_datetime(value).timetuple().tm_yday),
}

# Named constants available as bare identifiers in expressions.
CONSTANTS = {
    "NaN": float("nan"),
    "E": math.e,
    "LN2": math.log(2),
    "LN10": math.log(10),
    "LOG2E": 1 / math.log(2),
    "LOG10E": 1 / math.log(10),
    "PI": math.pi,
    "SQRT1_2": math.sqrt(0.5),
    "SQRT2": math.sqrt(2),
    "MIN_VALUE": 5e-324,
    "MAX_VALUE": 1.7976931348623157e308,
    "undefined": None,
    "Infinity": float("inf"),
}
