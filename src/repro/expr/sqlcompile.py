"""Compile Vega expression ASTs to SQL expression text.

This is step (1) of the VegaPlus optimization dynamic ("SQL rewriting",
§2.2): transform parameters written in the Vega expression language are
translated into SQL so that the owning operator can execute in the DBMS.

Signal references are *bound at compile time* — the middleware substitutes
the current signal values into the query, and interactions that change a
signal trigger re-compilation (or a prefetched variant).  Expressions that
use features with no SQL counterpart raise
:class:`~repro.expr.errors.UntranslatableExpression`; the partition
planner then pins the owning transform to the client.
"""

import math

from repro.expr import ast
from repro.expr.constfold import fold
from repro.expr.errors import UntranslatableExpression
from repro.expr.functions import CONSTANTS
from repro.expr.parser import parse

_COMPARISON = {"==": "=", "===": "=", "!=": "<>", "!==": "<>",
               "<": "<", ">": ">", "<=": "<=", ">=": ">="}
_ARITHMETIC = {"+": "+", "-": "-", "*": "*", "/": "/", "%": "%"}

# func name -> (sql template or callable(args)->sql, arity or None for varargs)
_SQL_FUNCTIONS = {
    "abs": ("ABS({0})", 1),
    "ceil": ("CEIL({0})", 1),
    "floor": ("FLOOR({0})", 1),
    "round": ("ROUND({0})", 1),
    "sqrt": ("SQRT({0})", 1),
    "exp": ("EXP({0})", 1),
    "log": ("LN({0})", 1),
    "pow": ("POWER({0}, {1})", 2),
    "min": ("LEAST({0}, {1})", 2),
    "max": ("GREATEST({0}, {1})", 2),
    "upper": ("UPPER({0})", 1),
    "lower": ("LOWER({0})", 1),
    "trim": ("TRIM({0})", 1),
    "length": ("LENGTH({0})", 1),
    "year": ("YEAR({0})", 1),
    "quarter": ("QUARTER({0})", 1),
    "date": ("DAYOFMONTH({0})", 1),
    "hours": ("HOUR({0})", 1),
    "minutes": ("MINUTE({0})", 1),
    "seconds": ("SECOND({0})", 1),
    "toNumber": ("CAST({0} AS DOUBLE)", 1),
    "toString": ("CAST({0} AS VARCHAR)", 1),
    "isValid": ("({0} IS NOT NULL)", 1),
    "isNaN": ("({0} IS NULL)", 1),  # NaN maps to NULL in our SQL data model
}


def _month_sql(args):
    # Vega month() is 0-based, SQL MONTH() is 1-based.
    return "(MONTH({0}) - 1)".format(args[0])


def _clamp_sql(args, raw_args):
    # The client clamp (functions._clamp) coerces through _number, so a
    # NULL/NaN value folds to the *hi* bound (Python's min keeps the
    # non-NaN side), and swapped bounds are reordered.  A bare
    # LEAST(GREATEST(...)) returns NULL instead — with literal numeric
    # bounds the SQL mirrors the client exactly; computed bounds are
    # pinned to the client.
    lo_node, hi_node = raw_args[1], raw_args[2]
    bounds = []
    for node in (lo_node, hi_node):
        if not isinstance(node, ast.Literal) \
                or isinstance(node.value, bool) \
                or not isinstance(node.value, (int, float)) \
                or not math.isfinite(node.value):
            raise UntranslatableExpression(
                "clamp() bounds must be finite numeric literals")
        bounds.append(float(node.value))
    lo, hi = sorted(bounds)
    return (
        "CASE WHEN ({0}) IS NULL THEN {2} "
        "ELSE LEAST(GREATEST({0}, {1}), {2}) END"
    ).format(args[0], sql_literal(lo), sql_literal(hi))


def _if_sql(args):
    return "CASE WHEN {0} THEN {1} ELSE {2} END".format(*args)


def _test_sql(args, raw_args):
    # test(regex, value) — pattern must be a literal for SQL translation.
    if not isinstance(raw_args[0], ast.Literal) or not isinstance(raw_args[0].value, str):
        raise UntranslatableExpression("test() pattern must be a string literal")
    return "({1} REGEXP {0})".format(args[0], args[1])


def _indexof_sql(args):
    # 1-based STRPOS minus one to match JS indexOf semantics.
    return "(STRPOS({0}, {1}) - 1)".format(args[0], args[1])


_SQL_FUNCTION_BUILDERS = {
    "month": _month_sql,
    "if": _if_sql,
    "indexof": _indexof_sql,
}


def quote_ident(name):
    """Quote a SQL identifier, escaping embedded quotes."""
    return '"' + name.replace('"', '""') + '"'


def sql_literal(value):
    """Render a Python value as a SQL literal."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, float):
        if math.isnan(value):
            return "NULL"
        if math.isinf(value):
            raise UntranslatableExpression("infinity has no SQL literal")
        if value.is_integer() and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    raise UntranslatableExpression(
        "value {!r} has no SQL literal form".format(value)
    )


class SQLCompiler:
    """Compiles expression ASTs against a signal scope.

    ``signals`` maps signal name -> current value; signal references are
    inlined as literals.  ``field_map`` optionally renames datum fields to
    column expressions (used after projection/derivation steps).
    """

    def __init__(self, signals=None, field_map=None):
        self.signals = signals if signals is not None else {}
        self.field_map = field_map if field_map is not None else {}

    def compile(self, source):
        node = source if isinstance(source, ast.Node) else parse(source)
        # Inline current signal values first so that folding can resolve
        # signal-guarded branches (e.g. "pattern == '' || test(pattern, …)"
        # folds to TRUE when the search box is empty) and so that literal
        # requirements (regex patterns) see concrete strings.
        from repro.expr.constfold import substitute_signals

        node = substitute_signals(node, self.signals)
        node = fold(node)
        return self._emit(node)

    # -- emitters ----------------------------------------------------------

    def _emit(self, node):
        if isinstance(node, ast.Literal):
            return sql_literal(node.value)
        if isinstance(node, ast.Identifier):
            return self._emit_identifier(node)
        if isinstance(node, ast.Member):
            return self._emit_member(node)
        if isinstance(node, ast.Unary):
            return self._emit_unary(node)
        if isinstance(node, ast.Binary):
            return self._emit_binary(node)
        if isinstance(node, ast.Conditional):
            return "CASE WHEN {} THEN {} ELSE {} END".format(
                self._emit(node.test),
                self._emit(node.consequent),
                self._emit(node.alternate),
            )
        if isinstance(node, ast.Call):
            return self._emit_call(node)
        raise UntranslatableExpression(
            "{} has no SQL translation".format(type(node).__name__)
        )

    def _emit_identifier(self, node):
        name = node.name
        if name == "datum":
            raise UntranslatableExpression("bare 'datum' cannot appear in SQL")
        if name in self.signals:
            return sql_literal(self.signals[name])
        if name in CONSTANTS:
            return sql_literal(CONSTANTS[name])
        raise UntranslatableExpression(
            "unbound identifier {!r}; signal value required".format(name)
        )

    def _emit_member(self, node):
        if isinstance(node.obj, ast.Identifier) and node.obj.name == "datum":
            if isinstance(node.prop, ast.Literal) and isinstance(node.prop.value, str):
                field = node.prop.value
                if field in self.field_map:
                    return self.field_map[field]
                return quote_ident(field)
            raise UntranslatableExpression(
                "dynamic datum field access cannot be translated"
            )
        raise UntranslatableExpression("nested member access has no SQL form")

    def _emit_unary(self, node):
        operand = self._emit(node.operand)
        if node.op == "-":
            return "(-{})".format(operand)
        if node.op == "+":
            return operand
        if node.op == "!":
            return "(NOT {})".format(operand)
        raise UntranslatableExpression(
            "unary {!r} has no SQL translation".format(node.op)
        )

    def _emit_binary(self, node):
        op = node.op
        if op in ("&&", "||"):
            keyword = "AND" if op == "&&" else "OR"
            return "({} {} {})".format(
                self._emit(node.left), keyword, self._emit(node.right)
            )
        if op in _COMPARISON:
            # Equality against null must become IS NULL for SQL semantics.
            sql_op = _COMPARISON[op]
            left_null = isinstance(node.left, ast.Literal) and node.left.value is None
            right_null = isinstance(node.right, ast.Literal) and node.right.value is None
            if left_null or right_null:
                other = node.right if left_null else node.left
                if sql_op == "=":
                    return "({} IS NULL)".format(self._emit(other))
                if sql_op == "<>":
                    return "({} IS NOT NULL)".format(self._emit(other))
                # Ordered comparison against a null literal: the client
                # evaluator coerces null to NaN, so the comparison is
                # uniformly false — for NULL operands too.
                return "FALSE"
            return self._emit_comparison(sql_op, node)
        if op == "+":
            if self._is_stringy(node.left) or self._is_stringy(node.right):
                return "({} || {})".format(
                    self._emit(node.left), self._emit(node.right)
                )
            return "({} + {})".format(self._emit(node.left), self._emit(node.right))
        if op in _ARITHMETIC:
            return "({} {} {})".format(
                self._emit(node.left), _ARITHMETIC[op], self._emit(node.right)
            )
        if op == "**":
            return "POWER({}, {})".format(
                self._emit(node.left), self._emit(node.right)
            )
        raise UntranslatableExpression(
            "operator {!r} has no SQL translation".format(op)
        )

    def _emit_comparison(self, sql_op, node):
        """Comparison with JS truth semantics: always TRUE or FALSE.

        JS comparisons are two-valued while SQL's are three-valued: a
        NULL operand yields NULL, which WHERE treats as FALSE but NOT
        flips to "still dropped" — diverging from the client evaluator,
        where ``null != 5`` is true and ``null == null`` is true.  Every
        comparison therefore compiles to a COALESCE that pins the NULL
        case to the boolean the client would produce (ordered
        comparisons on NULL/NaN are false; equality holds only when
        both sides are null).
        """
        left_sql = self._emit(node.left)
        right_sql = self._emit(node.right)
        compare = "({} {} {})".format(left_sql, sql_op, right_sql)
        if sql_op in ("<", ">", "<=", ">="):
            return "COALESCE({}, FALSE)".format(compare)
        both_null = "(({} IS NULL) AND ({} IS NULL))".format(
            left_sql, right_sql
        )
        # A non-null literal side cannot produce the both-null case.
        literal_side = (
            isinstance(node.left, ast.Literal)
            or isinstance(node.right, ast.Literal)
        )
        if sql_op == "=":
            if literal_side:
                return "COALESCE({}, FALSE)".format(compare)
            return "COALESCE({}, {})".format(compare, both_null)
        if literal_side:
            return "COALESCE({}, TRUE)".format(compare)
        return "COALESCE({}, (NOT {}))".format(compare, both_null)

    def _emit_call(self, node):
        args = [self._emit(arg) for arg in node.args]
        if node.func == "test":
            return _test_sql(args, node.args)
        if node.func == "clamp":
            if len(args) != 3:
                raise UntranslatableExpression(
                    "clamp() expects 3 argument(s), got {}".format(len(args)))
            return _clamp_sql(args, node.args)
        builder = _SQL_FUNCTION_BUILDERS.get(node.func)
        if builder is not None:
            return builder(args)
        entry = _SQL_FUNCTIONS.get(node.func)
        if entry is None:
            raise UntranslatableExpression(
                "function {!r} has no SQL translation".format(node.func)
            )
        template, arity = entry
        if arity is not None and len(args) != arity:
            raise UntranslatableExpression(
                "{}() expects {} argument(s), got {}".format(
                    node.func, arity, len(args)
                )
            )
        return template.format(*args)

    def _is_stringy(self, node):
        if isinstance(node, ast.Literal):
            return isinstance(node.value, str)
        if isinstance(node, ast.Call):
            return node.func in ("toString", "upper", "lower", "trim",
                                 "substring", "pad", "truncate", "replace")
        if isinstance(node, ast.Binary) and node.op == "+":
            return self._is_stringy(node.left) or self._is_stringy(node.right)
        return False


def compile_expression(source, signals=None, field_map=None):
    """Convenience wrapper: compile ``source`` to a SQL expression string."""
    return SQLCompiler(signals=signals, field_map=field_map).compile(source)


def is_translatable(source, signals=None):
    """True when the expression compiles to SQL under the given signals."""
    try:
        compile_expression(source, signals=signals)
    except UntranslatableExpression:
        return False
    return True
