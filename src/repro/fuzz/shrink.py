"""Greedy minimization of failing fuzz cases.

Given a failing case and a predicate (default: "check_case reports at
least one mismatch"), repeatedly try structure-preserving reductions —
fewer rows, fewer transform steps, fewer columns — keeping any reduction
that still fails, until a fixpoint or the evaluation budget runs out.
Candidate reductions that make the case *invalid* (a removed step breaks
a column reference, say) simply stop failing-with-a-mismatch and are
rejected by the predicate, so the shrinker needs no schema knowledge.
"""


def _default_predicate():
    """Signature-preserving predicate: the first evaluation (the original
    failing case) records its mismatch signatures ``(kind, sink)``; later
    candidates only count as failing when they reproduce at least one of
    them.  Without this, a reduction can slide into an unrelated failure
    class (e.g. dropping a column the spec references turns a value
    mismatch into a construction error) and the "minimized" repro no
    longer demonstrates the original bug."""
    from repro.fuzz.oracle import check_case

    baseline = []

    def is_failing(case):
        signatures = {
            (mismatch.kind, mismatch.sink)
            for mismatch in check_case(case).mismatches
        }
        if not baseline:
            if not signatures:
                return False
            baseline.append(signatures)
            return True
        return bool(signatures & baseline[0])

    return is_failing


class _Budget:
    def __init__(self, max_evals, predicate):
        self.max_evals = max_evals
        self.evals = 0
        self.predicate = predicate

    @property
    def exhausted(self):
        return self.evals >= self.max_evals

    def failing(self, case):
        if self.exhausted:
            return False
        self.evals += 1
        try:
            return bool(self.predicate(case))
        except Exception:  # noqa: BLE001 - broken candidate, reject
            return False


def _with_rows(case, name, rows):
    candidate = case.clone()
    candidate.tables[name] = [dict(row) for row in rows]
    return candidate


def _shrink_rows(case, budget):
    """Halve tables while the failure persists, then drop single rows."""
    changed = False
    for name in list(case.tables):
        # Bisection: repeatedly try keeping either half.
        while len(case.tables[name]) > 1 and not budget.exhausted:
            rows = case.tables[name]
            half = len(rows) // 2
            if budget.failing(_with_rows(case, name, rows[:half])):
                case.tables[name] = [dict(row) for row in rows[:half]]
                changed = True
                continue
            if budget.failing(_with_rows(case, name, rows[half:])):
                case.tables[name] = [dict(row) for row in rows[half:]]
                changed = True
                continue
            break
        # One-at-a-time removal once the table is small.  Tables keep at
        # least one row: the generator never emits an empty dimension
        # table, so an emptied table would leave the valid input space.
        if len(case.tables[name]) <= 12:
            index = 0
            while len(case.tables[name]) > 1 and \
                    index < len(case.tables[name]) and not budget.exhausted:
                rows = case.tables[name]
                candidate_rows = rows[:index] + rows[index + 1:]
                if budget.failing(_with_rows(case, name, candidate_rows)):
                    case.tables[name] = [
                        dict(row) for row in candidate_rows
                    ]
                    changed = True
                else:
                    index += 1
    return changed


def _transform_slots(spec):
    """(dataset_dict, step_index) for every transform step, last first."""
    slots = []
    for dataset in spec.get("data", []):
        for index in range(len(dataset.get("transform", []))):
            slots.append((dataset["name"], index))
    return list(reversed(slots))


def _without_step(case, dataset_name, index):
    candidate = case.clone()
    for dataset in candidate.spec.get("data", []):
        if dataset.get("name") == dataset_name:
            del dataset["transform"][index]
    return candidate


def _shrink_steps(case, budget):
    """Drop transform steps (later steps first) while the failure holds."""
    changed = False
    progress = True
    while progress and not budget.exhausted:
        progress = False
        for dataset_name, index in _transform_slots(case.spec):
            candidate = _without_step(case, dataset_name, index)
            if budget.failing(candidate):
                case.spec = candidate.spec
                case.tables = candidate.tables
                changed = progress = True
                break
    return changed


def _shrink_columns(case, budget):
    """Drop whole columns from root tables while the failure holds."""
    changed = False
    for name in list(case.tables):
        rows = case.tables[name]
        if not rows:
            continue
        for column in list(rows[0]):
            if budget.exhausted:
                return changed
            if len(case.tables[name][0]) <= 1:
                break  # zero-column tables are outside the input space
            candidate = case.clone()
            candidate.tables[name] = [
                {key: value for key, value in row.items() if key != column}
                for row in candidate.tables[name]
            ]
            if budget.failing(candidate):
                case.tables = candidate.tables
                changed = True
    return changed


def shrink_case(case, is_failing=None, max_evals=200):
    """Minimize ``case`` while ``is_failing`` stays true.

    Returns ``(minimized_case, evaluations_used)``.  The input case is
    not mutated.  If the case does not fail the predicate to begin with,
    it is returned unchanged (with one evaluation spent discovering so).
    """
    predicate = is_failing or _default_predicate()
    budget = _Budget(max_evals, predicate)
    current = case.clone()
    if not budget.failing(current):
        return current, budget.evals

    progress = True
    while progress and not budget.exhausted:
        progress = False
        if _shrink_steps(current, budget):
            progress = True
        if _shrink_rows(current, budget):
            progress = True
        if _shrink_columns(current, budget):
            progress = True
    current.notes = (case.notes + " | " if case.notes else "") + \
        "shrunk in {} evals".format(budget.evals)
    return current, budget.evals
