"""Shared benchmark configuration.

``REPRO_BENCH_SCALE`` scales every workload's row counts (default 1.0) so
the suite can run quickly in CI (0.2) or at larger scale (5.0) without
editing the benchmarks.

:func:`write_bench_record` is the shared machine-readable output path:
every ``bench_e*.py`` can persist a ``BENCH_<name>.json`` record (with
git SHA, timestamp, and scale) next to the printed tables, so perf runs
leave comparable artifacts instead of scrollback.  ``REPRO_BENCH_OUT``
overrides the output directory (default: current working directory).
"""

import datetime
import json
import os
import subprocess

import pytest

# The one shared nearest-rank implementation: the metrics plane's
# windowed histogram percentiles and the benchmark summaries must agree,
# and do so by construction because both call these.
from repro.metrics import latency_summary, percentile  # noqa: F401


def scale():
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(n):
    return max(int(n * scale()), 100)


@pytest.fixture(scope="session")
def bench_scale():
    return scale()


def git_sha():
    """Current commit SHA, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def write_bench_record(name, payload):
    """Persist one benchmark's results as ``BENCH_<name>.json``.

    ``payload`` is the benchmark-specific body (timings, config); the
    envelope adds the benchmark name, git SHA, UTC timestamp, and the
    active ``REPRO_BENCH_SCALE``.  Returns the path written.
    """
    out_dir = os.environ.get("REPRO_BENCH_OUT", os.getcwd())
    record = {
        "benchmark": name,
        "git_sha": git_sha(),
        "timestamp": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(),
        "scale": scale(),
        "results": payload,
    }
    path = os.path.join(out_dir, "BENCH_{}.json".format(name))
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("\nbench record written to {}".format(path))
    return path


def print_header(title):
    line = "=" * max(len(title), 8)
    print("\n{}\n{}\n{}".format(line, title, line))


def print_rows(headers, rows, fmt=None):
    widths = [
        max(len(str(header)),
            max((len(str(row[index])) for row in rows), default=0))
        for index, header in enumerate(headers)
    ]
    def render(cells):
        return "  ".join(
            "{:>{}}".format(str(cell), widths[index])
            for index, cell in enumerate(cells)
        )
    print(render(headers))
    print("-" * (sum(widths) + 2 * (len(widths) - 1)))
    for row in rows:
        print(render(row))
