"""Vega specification model, parser, validator, and example specs."""

from repro.spec.examples import (
    census_stacked_area_spec,
    flights_histogram_spec,
    flights_scatter_spec,
    simple_filter_spec,
)
from repro.spec.model import (
    DataSpec,
    EncodingChannel,
    MarkSpec,
    ScaleSpec,
    SignalSpec,
    Spec,
    SpecError,
    TransformSpec,
)
from repro.spec.parse import parse_spec
from repro.spec.validate import validate_spec
from repro.spec.vegalite import compile_vegalite

__all__ = [
    "DataSpec",
    "EncodingChannel",
    "MarkSpec",
    "ScaleSpec",
    "SignalSpec",
    "Spec",
    "SpecError",
    "TransformSpec",
    "census_stacked_area_spec",
    "compile_vegalite",
    "flights_histogram_spec",
    "flights_scatter_spec",
    "parse_spec",
    "simple_filter_spec",
    "validate_spec",
]
