"""Tests for the engine's logical optimizer (pushdown, pruning, fusion)
and EXPLAIN output."""

import pytest

from repro.engine import Database, Table
from repro.engine.binder import bind
from repro.engine.logical import Filter, Project, Scan, walk_plan
from repro.engine.optimizer import optimize
from repro.engine.parser import parse_select


@pytest.fixture
def db():
    database = Database()
    database.load_table(
        "t",
        Table.from_columns(
            a=[1.0, 2.0, 3.0], b=[4.0, 5.0, 6.0], c=["x", "y", "z"],
        ),
    )
    return database


def plan_for(db, sql, **flags):
    plan = bind(parse_select(sql), db.catalog)
    return optimize(plan, db.catalog, **flags)


class TestPushdown:
    def test_filter_pushed_below_project(self, db):
        plan = plan_for(db, "SELECT a * 2 AS d FROM t WHERE a > 1")
        # After optimization the filter must sit directly above the scan.
        nodes = list(walk_plan(plan))
        filter_nodes = [node for node in nodes if isinstance(node, Filter)]
        assert filter_nodes
        assert isinstance(filter_nodes[-1].child, Scan)

    def test_filter_on_computed_column_substituted(self, db):
        explain = db.explain(
            "SELECT d FROM (SELECT a * 2 AS d FROM t) AS s WHERE d > 2"
        )
        # The predicate is rewritten in terms of the base column.
        assert '("a" * 2)' in explain
        assert "Scan t" in explain

    def test_adjacent_filters_fused(self, db):
        plan = plan_for(db, "SELECT a FROM (SELECT a FROM t WHERE a > 1) "
                            "AS s WHERE a < 3")
        filters = [n for n in walk_plan(plan) if isinstance(n, Filter)]
        assert len(filters) == 1
        assert "AND" in filters[0].predicate.to_sql()

    def test_pushdown_can_be_disabled(self, db):
        sql = "SELECT d FROM (SELECT a * 2 AS d FROM t) AS s WHERE d > 2"
        unoptimized = plan_for(db, sql, enable_pushdown=False)
        filters = [n for n in walk_plan(unoptimized)
                   if isinstance(n, Filter)]
        # Without pushdown the filter stays above the derived table.
        assert not isinstance(filters[0].child, Scan)
        optimized = plan_for(db, sql)
        filters = [n for n in walk_plan(optimized) if isinstance(n, Filter)]
        assert isinstance(filters[-1].child, Scan)


class TestPruning:
    def test_scan_restricted_to_used_columns(self, db):
        plan = plan_for(db, "SELECT a FROM t")
        scan = next(n for n in walk_plan(plan) if isinstance(n, Scan))
        assert scan.columns == ["a"]

    def test_filter_columns_kept(self, db):
        plan = plan_for(db, "SELECT a FROM t WHERE b > 4")
        scan = next(n for n in walk_plan(plan) if isinstance(n, Scan))
        assert set(scan.columns) == {"a", "b"}

    def test_star_keeps_everything(self, db):
        plan = plan_for(db, "SELECT * FROM t")
        scan = next(n for n in walk_plan(plan) if isinstance(n, Scan))
        assert scan.columns is None or set(scan.columns) == {"a", "b", "c"}

    def test_count_star_scans_one_column(self, db):
        plan = plan_for(db, "SELECT COUNT(*) AS n FROM t")
        scan = next(n for n in walk_plan(plan) if isinstance(n, Scan))
        assert scan.columns is not None and len(scan.columns) == 1

    def test_pruning_can_be_disabled(self, db):
        plan = plan_for(db, "SELECT a FROM t", enable_pruning=False)
        scan = next(n for n in walk_plan(plan) if isinstance(n, Scan))
        assert scan.columns is None


class TestOptimizedCorrectness:
    """Optimization flags must never change results."""

    QUERIES = [
        "SELECT a FROM t WHERE b > 4",
        "SELECT a * 2 AS d FROM (SELECT a FROM t WHERE a > 1) AS s",
        "SELECT c, COUNT(*) AS n FROM t GROUP BY c ORDER BY c",
        "SELECT d FROM (SELECT a + b AS d, c FROM t) AS s WHERE d > 6 "
        "ORDER BY d",
        "SELECT a FROM (SELECT a FROM t ORDER BY a DESC) AS s WHERE a < 3",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_flags_equivalent(self, sql):
        results = []
        for pushdown in (True, False):
            for pruning in (True, False):
                db = Database(enable_pushdown=pushdown,
                              enable_pruning=pruning)
                db.load_table(
                    "t",
                    Table.from_columns(
                        a=[1.0, 2.0, 3.0], b=[4.0, 5.0, 6.0],
                        c=["x", "y", "z"],
                    ),
                )
                results.append(db.execute(sql).to_rows())
        assert all(result == results[0] for result in results[1:])


class TestExplain:
    def test_explain_shows_tree(self, db):
        text = db.explain("SELECT c, COUNT(*) AS n FROM t "
                          "WHERE a > 1 GROUP BY c")
        assert "Aggregate" in text
        assert "Filter" in text
        assert "Scan t" in text
        # Indentation encodes the tree depth.
        lines = text.splitlines()
        assert lines[0].startswith("Project")
        assert lines[-1].strip().startswith("Scan")

    def test_explain_statement_form(self, db):
        assert db.execute("EXPLAIN SELECT a FROM t") == \
            db.explain("SELECT a FROM t")

    def test_explain_includes_pruned_columns(self, db):
        text = db.explain("SELECT a FROM t")
        assert "cols=[a]" in text


class TestExplainAnalyze:
    def test_annotated_plan(self, db):
        text = db.explain_analyze(
            "SELECT c, COUNT(*) AS n FROM t WHERE a > 1 GROUP BY c"
        )
        assert "rows_out=" in text and "time=" in text
        # Filter output: a in {2, 3} -> 2 rows survive the scan of 3.
        filter_line = next(
            line for line in text.splitlines() if "Filter" in line
        )
        assert "rows_in=3" in filter_line
        assert "rows_out=2" in filter_line

    def test_stats_not_reentrant_flag_resets(self, db):
        db.explain_analyze("SELECT a FROM t")
        # A plain execute afterwards must not collect stats or fail.
        assert db.execute("SELECT a FROM t").num_rows == 3

    def test_plain_explain_has_no_stats(self, db):
        text = db.explain("SELECT a FROM t")
        assert "time=" not in text
