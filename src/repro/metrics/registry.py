"""Process-wide labeled metrics: counters, gauges, windowed histograms.

The tracer (:mod:`repro.telemetry`) is deep but opt-in and per-session;
this registry is the always-on plane a serving fleet scrapes.  Three
metric kinds, each **labeled** (``session=``/``tenant=``/free-form), all
behind one lock so concurrent sessions on a shared Database aggregate
exactly:

* :class:`Counter` — monotonic, plus a sliding time-bucket ring so
  ``rate()`` answers "per second over the last window";
* :class:`Gauge` — a set/add level (resident cache bytes);
* :class:`Histogram` — cumulative fixed-boundary buckets (the Prometheus
  exposition shape) plus a sliding window ring of raw samples, so
  ``window_percentile(50/95/99)`` answers the SLO question the batch
  helpers (:func:`percentile` / :func:`latency_summary`) answer offline
  — on the same samples the two agree exactly.

Everything is stdlib-only and cheap enough to stay on by default: one
lock acquisition and a couple of dict/list operations per update (the
overhead guard in ``tests/test_parallel_stress.py`` holds the budget).
A process-global default registry lives in :data:`repro.metrics.REGISTRY`.
"""

import math
import threading
import time

#: sliding window length every counter rate and histogram percentile
#: reads over, unless the registry overrides it
DEFAULT_WINDOW_SECONDS = 60.0
#: ring granularity: the window is split into this many time buckets
DEFAULT_WINDOW_BUCKETS = 12
#: raw samples retained per histogram time bucket; beyond it the window
#: percentiles degrade gracefully (``window_dropped`` counts the loss)
DEFAULT_WINDOW_SAMPLES = 512

#: default histogram boundaries: log-spaced seconds, 1us .. 100s
#: (mirrors the tracer's Histogram so bridged metrics bucket identically)
DEFAULT_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0)


def percentile(values, q):
    """Nearest-rank percentile: the smallest value with at least ``q``
    percent of the sample at or below it.  0.0 on an empty sample.

    This is the single shared implementation — the windowed histograms
    and the benchmark suite (``benchmarks/conftest.py`` re-exports it)
    must agree, and do so by construction.
    """
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def latency_summary(latencies):
    """p50/p95/p99/mean/max summary dict for a latency sample."""
    latencies = list(latencies)
    return {
        "events": len(latencies),
        "mean_s": (sum(latencies) / len(latencies)) if latencies else 0.0,
        "p50_s": percentile(latencies, 50),
        "p95_s": percentile(latencies, 95),
        "p99_s": percentile(latencies, 99),
        "max_s": max(latencies) if latencies else 0.0,
    }


def _label_key(labels):
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonic labeled counter with a sliding-window delta ring."""

    __slots__ = ("labels", "value", "_lock", "_width", "_slots",
                 "_epochs", "_deltas", "_clock")

    def __init__(self, labels, lock, clock, window_seconds, window_buckets):
        self.labels = labels
        self.value = 0
        self._lock = lock
        self._clock = clock
        self._width = window_seconds / window_buckets
        self._slots = window_buckets
        self._epochs = [-1] * window_buckets
        self._deltas = [0] * window_buckets

    def inc(self, delta=1):
        with self._lock:
            self.value += delta
            epoch = int(self._clock() / self._width)
            slot = epoch % self._slots
            if self._epochs[slot] != epoch:
                self._epochs[slot] = epoch
                self._deltas[slot] = 0
            self._deltas[slot] += delta
        return self.value

    def window_delta(self):
        """Increments observed inside the sliding window (including the
        current partial time bucket)."""
        with self._lock:
            return self._window_delta_locked()

    def _window_delta_locked(self):
        epoch = int(self._clock() / self._width)
        floor = epoch - self._slots + 1
        return sum(
            self._deltas[slot] for slot in range(self._slots)
            if self._epochs[slot] >= floor
        )

    def rate(self):
        """Increments per second over the sliding window."""
        with self._lock:
            return self._window_delta_locked() / (self._width * self._slots)


class Gauge:
    """A labeled level that can be set or adjusted."""

    __slots__ = ("labels", "value", "_lock")

    def __init__(self, labels, lock):
        self.labels = labels
        self.value = 0.0
        self._lock = lock

    def set(self, value):
        with self._lock:
            self.value = float(value)

    def add(self, delta):
        with self._lock:
            self.value += float(delta)
        return self.value


class _WindowBucket:
    __slots__ = ("count", "total", "samples", "dropped")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.samples = []
        self.dropped = 0


class Histogram:
    """A labeled distribution: cumulative fixed-boundary bucket counts
    (rendered as a Prometheus histogram) plus a sliding window of raw
    samples answering exact nearest-rank percentiles."""

    __slots__ = ("labels", "bounds", "count", "total", "minimum", "maximum",
                 "bucket_counts", "_lock", "_clock", "_width", "_slots",
                 "_epochs", "_window", "_sample_cap")

    def __init__(self, labels, lock, clock, window_seconds, window_buckets,
                 bounds=DEFAULT_BUCKETS, sample_cap=DEFAULT_WINDOW_SAMPLES):
        self.labels = labels
        self.bounds = tuple(bounds)
        self.count = 0
        self.total = 0.0
        self.minimum = None
        self.maximum = None
        #: per-bin (non-cumulative) counts; the exporter prefix-sums them
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self._lock = lock
        self._clock = clock
        self._width = window_seconds / window_buckets
        self._slots = window_buckets
        self._epochs = [-1] * window_buckets
        self._window = [_WindowBucket() for _ in range(window_buckets)]
        self._sample_cap = sample_cap

    def observe(self, value):
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if self.minimum is None or value < self.minimum:
                self.minimum = value
            if self.maximum is None or value > self.maximum:
                self.maximum = value
            index = len(self.bounds)
            for position, bound in enumerate(self.bounds):
                if value <= bound:
                    index = position
                    break
            self.bucket_counts[index] += 1

            epoch = int(self._clock() / self._width)
            slot = epoch % self._slots
            bucket = self._window[slot]
            if self._epochs[slot] != epoch:
                self._epochs[slot] = epoch
                bucket.count = 0
                bucket.total = 0.0
                bucket.samples = []
                bucket.dropped = 0
            bucket.count += 1
            bucket.total += value
            if len(bucket.samples) < self._sample_cap:
                bucket.samples.append(value)
            else:
                bucket.dropped += 1

    def _live_buckets_locked(self):
        epoch = int(self._clock() / self._width)
        floor = epoch - self._slots + 1
        live = [
            (self._epochs[slot], self._window[slot])
            for slot in range(self._slots)
            if self._epochs[slot] >= floor
        ]
        live.sort(key=lambda item: item[0])
        return [bucket for _, bucket in live]

    def window_samples(self):
        """Raw samples inside the sliding window, oldest bucket first."""
        with self._lock:
            out = []
            for bucket in self._live_buckets_locked():
                out.extend(bucket.samples)
            return out

    def window_count(self):
        with self._lock:
            return sum(b.count for b in self._live_buckets_locked())

    def window_dropped(self):
        """Samples the window ring could not retain (percentiles degrade
        to the retained subset when this is nonzero)."""
        with self._lock:
            return sum(b.dropped for b in self._live_buckets_locked())

    def window_percentile(self, q):
        """Nearest-rank percentile over the sliding window, via the same
        :func:`percentile` the benchmark suite uses."""
        return percentile(self.window_samples(), q)

    def window_summary(self):
        """:func:`latency_summary` over the sliding window."""
        summary = latency_summary(self.window_samples())
        summary["dropped"] = self.window_dropped()
        return summary

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0


class Family:
    """All children of one metric name, across label sets."""

    __slots__ = ("name", "kind", "help", "bounds", "children")

    def __init__(self, name, kind, help_text="", bounds=None):
        self.name = name
        self.kind = kind  # "counter" | "gauge" | "histogram"
        self.help = help_text
        self.bounds = bounds
        self.children = {}  # label key tuple -> metric


class MetricsRegistry:
    """Thread-safe registry of labeled metric families plus the process
    slow-query log.  ``clock`` is injectable for deterministic window
    tests (defaults to ``time.monotonic``)."""

    def __init__(self, clock=None, window_seconds=DEFAULT_WINDOW_SECONDS,
                 window_buckets=DEFAULT_WINDOW_BUCKETS,
                 window_samples=DEFAULT_WINDOW_SAMPLES,
                 slow_query_seconds=None, slow_query_capacity=None):
        from repro.metrics.slowlog import SlowQueryLog

        self.clock = clock or time.monotonic
        self.window_seconds = float(window_seconds)
        self.window_buckets = int(window_buckets)
        self.window_samples = int(window_samples)
        self._lock = threading.Lock()
        self._families = {}
        self.slowlog = SlowQueryLog(
            threshold_seconds=slow_query_seconds,
            capacity=slow_query_capacity,
        )

    enabled = True

    # -- family / child access -------------------------------------------------

    def _family(self, name, kind, help_text="", bounds=None):
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = Family(
                name, kind, help_text, bounds
            )
        elif family.kind != kind:
            raise ValueError(
                "metric {!r} already registered as a {} (requested {})"
                .format(name, family.kind, kind)
            )
        return family

    def counter(self, name, help="", **labels):
        """The labeled counter child for ``name`` (created on demand)."""
        key = _label_key(labels)
        with self._lock:
            family = self._family(name, "counter", help)
            child = family.children.get(key)
            if child is None:
                child = family.children[key] = Counter(
                    dict(labels), self._lock, self.clock,
                    self.window_seconds, self.window_buckets,
                )
        return child

    def gauge(self, name, help="", **labels):
        key = _label_key(labels)
        with self._lock:
            family = self._family(name, "gauge", help)
            child = family.children.get(key)
            if child is None:
                child = family.children[key] = Gauge(
                    dict(labels), self._lock
                )
        return child

    def histogram(self, name, help="", buckets=None, **labels):
        key = _label_key(labels)
        with self._lock:
            family = self._family(name, "histogram", help,
                                  bounds=tuple(buckets or DEFAULT_BUCKETS))
            child = family.children.get(key)
            if child is None:
                child = family.children[key] = Histogram(
                    dict(labels), self._lock, self.clock,
                    self.window_seconds, self.window_buckets,
                    bounds=family.bounds, sample_cap=self.window_samples,
                )
        return child

    # -- one-shot convenience ---------------------------------------------------

    def inc(self, name, delta=1, **labels):
        return self.counter(name, **labels).inc(delta)

    def set_gauge(self, name, value, **labels):
        self.gauge(name, **labels).set(value)

    def observe(self, name, value, **labels):
        self.histogram(name, **labels).observe(value)

    def view(self, **labels):
        """A :class:`MetricsView` with ``labels`` pre-bound (sessions
        bind ``session=``/``tenant=`` here)."""
        return MetricsView(self, labels)

    # -- introspection ----------------------------------------------------------

    def families(self):
        with self._lock:
            return dict(self._families)

    def snapshot(self):
        """One plain-data snapshot of every family, child, and the slow
        query log — the JSON exporter and the top view render this."""
        # Pull-model process gauges: refreshed at observation time so
        # every snapshot/scrape reports the current high-water mark.
        from repro.metrics.process import update_process_gauges

        update_process_gauges(self)
        out = {
            "window_seconds": self.window_seconds,
            "window_buckets": self.window_buckets,
            "families": {},
            "slowlog": self.slowlog.snapshot(),
        }
        for name, family in sorted(self.families().items()):
            children = []
            for key in sorted(family.children):
                child = family.children[key]
                entry = {"labels": dict(key)}
                if family.kind == "counter":
                    entry["value"] = child.value
                    entry["rate"] = child.rate()
                    entry["window_delta"] = child.window_delta()
                elif family.kind == "gauge":
                    entry["value"] = child.value
                else:
                    entry.update({
                        "count": child.count,
                        "sum": child.total,
                        "min": child.minimum,
                        "max": child.maximum,
                        "mean": child.mean,
                        "bounds": list(child.bounds),
                        "bucket_counts": list(child.bucket_counts),
                        "window": child.window_summary(),
                    })
                children.append(entry)
            out["families"][name] = {
                "kind": family.kind,
                "help": family.help,
                "children": children,
            }
        return out

    def reset(self):
        """Drop every family and clear the slow-query log (tests)."""
        with self._lock:
            self._families = {}
        self.slowlog.clear()


class MetricsView:
    """A registry handle with bound labels; what instrumented components
    hold.  Call-site labels merge over (and can override) bound ones."""

    __slots__ = ("registry", "labels")

    enabled = True

    def __init__(self, registry, labels):
        self.registry = registry
        self.labels = dict(labels)

    def _merged(self, labels):
        if not labels:
            return self.labels
        merged = dict(self.labels)
        merged.update(labels)
        return merged

    def counter(self, name, **labels):
        return self.registry.counter(name, **self._merged(labels))

    def gauge(self, name, **labels):
        return self.registry.gauge(name, **self._merged(labels))

    def histogram(self, name, buckets=None, **labels):
        return self.registry.histogram(
            name, buckets=buckets, **self._merged(labels)
        )

    def inc(self, name, delta=1, **labels):
        return self.registry.inc(name, delta, **self._merged(labels))

    def set_gauge(self, name, value, **labels):
        self.registry.set_gauge(name, value, **self._merged(labels))

    def observe(self, name, value, **labels):
        self.registry.observe(name, value, **self._merged(labels))

    def view(self, **labels):
        return MetricsView(self.registry, self._merged(labels))

    @property
    def slowlog(self):
        return self.registry.slowlog


class _NullChild:
    """Shared do-nothing metric child."""

    __slots__ = ()

    labels = {}
    value = 0

    def inc(self, delta=1):
        return 0

    def set(self, value):
        pass

    def add(self, delta):
        return 0

    def observe(self, value):
        pass

    def rate(self):
        return 0.0

    def window_delta(self):
        return 0

    def window_samples(self):
        return []

    def window_percentile(self, q):
        return 0.0

    def window_summary(self):
        return latency_summary([])


_NULL_CHILD = _NullChild()


class NullMetrics:
    """The disabled plane: every operation is a near-free no-op (the
    metrics analogue of the tracer's NOOP)."""

    enabled = False
    labels = {}

    def counter(self, name, **labels):
        return _NULL_CHILD

    def gauge(self, name, **labels):
        return _NULL_CHILD

    def histogram(self, name, buckets=None, **labels):
        return _NULL_CHILD

    def inc(self, name, delta=1, **labels):
        pass

    def set_gauge(self, name, value, **labels):
        pass

    def observe(self, name, value, **labels):
        pass

    def view(self, **labels):
        return self

    @property
    def slowlog(self):
        from repro.metrics.slowlog import NULL_SLOWLOG

        return NULL_SLOWLOG


#: the process-wide disabled view; instrumented components default to it
NULL = NullMetrics()
