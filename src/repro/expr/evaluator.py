"""Evaluator for Vega expression ASTs.

The evaluator binds three namespaces, matching Vega's runtime scope:

* ``datum`` — the current data object (a dict), referenced via member
  access (``datum.price``);
* signals — bare identifiers resolved against a signal dictionary;
* builtins — the function library and named constants.

JS-flavoured coercion rules are applied for arithmetic and comparison so
that expressions written for Vega behave identically here.
"""

import math
import time as _time

from repro.expr import ast
from repro.expr.errors import ExprEvalError
from repro.expr.functions import CONSTANTS, FUNCTIONS, _boolean, _number, _string
from repro.expr.parser import parse


def _js_add(left, right):
    if isinstance(left, str) or isinstance(right, str):
        return _string(left) + _string(right)
    return _number(left) + _number(right)


def _js_eq(left, right):
    # Loose equality with the coercions that matter for data filtering.
    if left is None or right is None:
        return left is None and right is None
    if isinstance(left, bool) or isinstance(right, bool):
        return _number(left) == _number(right)
    if isinstance(left, str) and isinstance(right, str):
        return left == right
    if isinstance(left, (int, float)) or isinstance(right, (int, float)):
        ln, rn = _number(left), _number(right)
        if math.isnan(ln) or math.isnan(rn):
            return False
        return ln == rn
    return left == right


def _js_strict_eq(left, right):
    if type(left) is not type(right):
        if isinstance(left, (int, float)) and isinstance(right, (int, float)) \
                and not isinstance(left, bool) and not isinstance(right, bool):
            return float(left) == float(right)
        return False
    if isinstance(left, float) and (math.isnan(left) or math.isnan(right)):
        return False
    return left == right


def _compare(op, left, right):
    if isinstance(left, str) and isinstance(right, str):
        pass  # lexicographic
    else:
        left, right = _number(left), _number(right)
        if isinstance(left, float) and (math.isnan(left) or math.isnan(right)):
            return False
    if op == "<":
        return left < right
    if op == ">":
        return left > right
    if op == "<=":
        return left <= right
    return left >= right


def _divide(left, right):
    left, right = _number(left), _number(right)
    if right == 0:
        if left == 0 or math.isnan(left):
            return float("nan")
        return math.copysign(float("inf"), left) * math.copysign(1.0, right)
    return left / right


def _modulo(left, right):
    left, right = _number(left), _number(right)
    if right == 0 or math.isnan(left) or math.isnan(right) or math.isinf(left):
        return float("nan")
    return math.fmod(left, right)


_BINARY_IMPL = {
    "+": _js_add,
    "-": lambda left, right: _number(left) - _number(right),
    "*": lambda left, right: _number(left) * _number(right),
    "/": _divide,
    "%": _modulo,
    "**": lambda left, right: _number(left) ** _number(right),
    "==": _js_eq,
    "!=": lambda left, right: not _js_eq(left, right),
    "===": _js_strict_eq,
    "!==": lambda left, right: not _js_strict_eq(left, right),
    "<": lambda left, right: _compare("<", left, right),
    ">": lambda left, right: _compare(">", left, right),
    "<=": lambda left, right: _compare("<=", left, right),
    ">=": lambda left, right: _compare(">=", left, right),
    "&": lambda left, right: float(int(_number(left)) & int(_number(right))),
    "|": lambda left, right: float(int(_number(left)) | int(_number(right))),
    "^": lambda left, right: float(int(_number(left)) ^ int(_number(right))),
    "<<": lambda left, right: float(int(_number(left)) << (int(_number(right)) & 31)),
    ">>": lambda left, right: float(int(_number(left)) >> (int(_number(right)) & 31)),
    ">>>": lambda left, right: float((int(_number(left)) & 0xFFFFFFFF) >> (int(_number(right)) & 31)),
}


class Evaluator:
    """Evaluates parsed expressions against a datum and a signal scope.

    ``now_fn`` lets tests freeze the clock; by default ``now()`` returns
    wall-clock milliseconds like JS ``Date.now()``.
    """

    def __init__(self, signals=None, functions=None, now_fn=None):
        self.signals = signals if signals is not None else {}
        self.functions = dict(FUNCTIONS)
        if functions:
            self.functions.update(functions)
        if now_fn is None:
            now_fn = lambda: _time.time() * 1000.0  # noqa: E731
        self.functions["now"] = now_fn

    def evaluate(self, node, datum=None, extra=None):
        """Evaluate ``node``; ``datum`` is the row dict, ``extra`` adds
        additional bare-identifier bindings (e.g. ``parent``)."""
        method = getattr(self, "_eval_" + type(node).__name__.lower(), None)
        if method is None:
            raise ExprEvalError("cannot evaluate node {!r}".format(node))
        return method(node, datum, extra)

    # -- node handlers -----------------------------------------------------

    def _eval_literal(self, node, datum, extra):
        return node.value

    def _eval_identifier(self, node, datum, extra):
        name = node.name
        if name == "datum":
            return datum
        if extra and name in extra:
            return extra[name]
        if name in self.signals:
            return self.signals[name]
        if name in CONSTANTS:
            return CONSTANTS[name]
        raise ExprEvalError("unknown identifier {!r}".format(name))

    def _eval_member(self, node, datum, extra):
        obj = self.evaluate(node.obj, datum, extra)
        prop = self.evaluate(node.prop, datum, extra)
        if obj is None:
            return None
        if isinstance(obj, dict):
            if isinstance(prop, float) and prop.is_integer():
                prop = str(int(prop))
            return obj.get(prop)
        if isinstance(obj, (list, str)):
            if prop == "length":
                return float(len(obj))
            index = int(_number(prop))
            if -len(obj) <= index < len(obj):
                return obj[index]
            return None
        return None

    def _eval_unary(self, node, datum, extra):
        value = self.evaluate(node.operand, datum, extra)
        if node.op == "-":
            return -_number(value)
        if node.op == "+":
            return _number(value)
        if node.op == "!":
            return not _boolean(value)
        if node.op == "~":
            return float(~int(_number(value)))
        raise ExprEvalError("unknown unary operator {!r}".format(node.op))

    def _eval_binary(self, node, datum, extra):
        if node.op == "&&":
            left = self.evaluate(node.left, datum, extra)
            if not _boolean(left):
                return left
            return self.evaluate(node.right, datum, extra)
        if node.op == "||":
            left = self.evaluate(node.left, datum, extra)
            if _boolean(left):
                return left
            return self.evaluate(node.right, datum, extra)
        impl = _BINARY_IMPL.get(node.op)
        if impl is None:
            raise ExprEvalError("unknown binary operator {!r}".format(node.op))
        left = self.evaluate(node.left, datum, extra)
        right = self.evaluate(node.right, datum, extra)
        return impl(left, right)

    def _eval_conditional(self, node, datum, extra):
        test = self.evaluate(node.test, datum, extra)
        branch = node.consequent if _boolean(test) else node.alternate
        return self.evaluate(branch, datum, extra)

    def _eval_call(self, node, datum, extra):
        fn = self.functions.get(node.func)
        if fn is None:
            raise ExprEvalError("unknown function {!r}".format(node.func))
        args = [self.evaluate(arg, datum, extra) for arg in node.args]
        try:
            return fn(*args)
        except TypeError as exc:
            raise ExprEvalError(
                "bad arguments for {}(): {}".format(node.func, exc)
            ) from exc

    def _eval_arrayexpr(self, node, datum, extra):
        return [self.evaluate(element, datum, extra) for element in node.elements]

    def _eval_objectexpr(self, node, datum, extra):
        return {
            key: self.evaluate(value, datum, extra)
            for key, value in zip(node.keys, node.values)
        }


def evaluate(source, datum=None, signals=None, **kwargs):
    """Parse and evaluate in one call (convenience for tests/examples)."""
    node = source if isinstance(source, ast.Node) else parse(source)
    return Evaluator(signals=signals, **kwargs).evaluate(node, datum)


def compile_predicate(source, signals=None):
    """Compile an expression into ``fn(datum) -> bool`` for filtering."""
    node = parse(source) if isinstance(source, str) else source
    evaluator = Evaluator(signals=signals)
    return lambda datum: _boolean(evaluator.evaluate(node, datum))
