"""Execution tests: SELECT semantics end-to-end through the Database."""

import pytest

from repro.engine import Database, ExecutionError, PlanError, Table


@pytest.fixture
def db():
    database = Database()
    database.load_table(
        "sales",
        Table.from_columns(
            region=["east", "west", "east", "west", "east", None],
            amount=[10.0, 20.0, 30.0, None, 50.0, 60.0],
            qty=[1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            product=["apple", "banana", "apple", "cherry", "banana", "apple"],
        ),
    )
    database.load_table(
        "regions",
        Table.from_columns(
            region=["east", "west"],
            manager=["Ann", "Bob"],
        ),
    )
    return database


def rows(db, sql):
    return db.execute(sql).to_rows()


class TestProjection:
    def test_star(self, db):
        result = db.execute("SELECT * FROM sales")
        assert result.num_rows == 6
        assert result.column_names == ["region", "amount", "qty", "product"]

    def test_expressions(self, db):
        result = rows(db, "SELECT amount * qty AS total FROM sales LIMIT 1")
        assert result == [{"total": 10.0}]

    def test_null_propagation_in_arithmetic(self, db):
        result = rows(db, "SELECT amount + 1 AS a FROM sales WHERE qty = 4")
        assert result == [{"a": None}]

    def test_string_concat(self, db):
        result = rows(
            db, "SELECT region || '-' || product AS tag FROM sales LIMIT 1"
        )
        assert result == [{"tag": "east-apple"}]

    def test_duplicate_aliases_rejected(self, db):
        with pytest.raises(PlanError):
            db.execute("SELECT amount AS a, qty AS a FROM sales")


class TestWhere:
    def test_comparison(self, db):
        assert len(rows(db, "SELECT * FROM sales WHERE amount > 15")) == 4

    def test_null_comparison_filters_out(self, db):
        # NULL > 15 is unknown -> excluded.
        result = rows(db, "SELECT qty FROM sales WHERE amount > 15 OR amount <= 15")
        assert len(result) == 5  # the NULL-amount row never qualifies

    def test_is_null(self, db):
        assert rows(db, "SELECT qty FROM sales WHERE amount IS NULL") == [
            {"qty": 4.0}
        ]

    def test_in_list(self, db):
        result = rows(
            db, "SELECT DISTINCT product FROM sales "
            "WHERE product IN ('apple', 'cherry') ORDER BY product"
        )
        assert [r["product"] for r in result] == ["apple", "cherry"]

    def test_not_in(self, db):
        result = rows(
            db,
            "SELECT DISTINCT product FROM sales "
            "WHERE product NOT IN ('apple') ORDER BY product",
        )
        assert [r["product"] for r in result] == ["banana", "cherry"]

    def test_between(self, db):
        assert len(rows(db, "SELECT * FROM sales WHERE qty BETWEEN 2 AND 4")) == 3

    def test_like(self, db):
        result = rows(db, "SELECT DISTINCT product FROM sales WHERE product LIKE 'a%'")
        assert result == [{"product": "apple"}]

    def test_regexp(self, db):
        result = rows(
            db, "SELECT DISTINCT product FROM sales WHERE product REGEXP 'an'"
        )
        assert result == [{"product": "banana"}]

    def test_kleene_and_with_null(self, db):
        # (NULL > 0) AND FALSE must be FALSE, not NULL: row excluded either way,
        # but (NULL > 0) OR TRUE must be TRUE: row included.
        result = rows(db, "SELECT qty FROM sales WHERE amount > 0 OR qty > 0")
        assert len(result) == 6


class TestAggregation:
    def test_global_aggregates(self, db):
        result = rows(
            db,
            "SELECT COUNT(*) AS n, COUNT(amount) AS valid, SUM(amount) AS s, "
            "AVG(amount) AS m, MIN(amount) AS lo, MAX(amount) AS hi FROM sales",
        )
        assert result == [
            {"n": 6.0, "valid": 5.0, "s": 170.0, "m": 34.0, "lo": 10.0, "hi": 60.0}
        ]

    def test_group_by(self, db):
        result = rows(
            db,
            "SELECT region, SUM(amount) AS s FROM sales "
            "GROUP BY region ORDER BY region NULLS LAST",
        )
        assert result == [
            {"region": "east", "s": 90.0},
            {"region": "west", "s": 20.0},
            {"region": None, "s": 60.0},
        ]

    def test_group_by_expression(self, db):
        result = rows(
            db,
            "SELECT FLOOR(qty / 2) AS bucket, COUNT(*) AS n FROM sales "
            "GROUP BY FLOOR(qty / 2) ORDER BY bucket",
        )
        assert [r["bucket"] for r in result] == [0.0, 1.0, 2.0, 3.0]

    def test_having(self, db):
        result = rows(
            db,
            "SELECT product, COUNT(*) AS n FROM sales GROUP BY product "
            "HAVING COUNT(*) > 1 ORDER BY product",
        )
        assert [r["product"] for r in result] == ["apple", "banana"]

    def test_count_distinct(self, db):
        result = rows(db, "SELECT COUNT(DISTINCT product) AS d FROM sales")
        assert result == [{"d": 3.0}]

    def test_statistics(self, db):
        result = rows(
            db, "SELECT MEDIAN(qty) AS md, STDDEV(qty) AS sd, VARIANCE(qty) AS v "
            "FROM sales"
        )
        assert result[0]["md"] == 3.5
        assert abs(result[0]["v"] - 3.5) < 1e-9

    def test_quantile(self, db):
        result = rows(db, "SELECT QUANTILE(qty, 0.5) AS q FROM sales")
        assert result == [{"q": 3.5}]

    def test_sum_of_empty_group_is_null(self, db):
        result = rows(db, "SELECT SUM(amount) AS s FROM sales WHERE qty > 100")
        assert result == [{"s": None}]

    def test_count_of_empty_is_zero(self, db):
        result = rows(db, "SELECT COUNT(*) AS n FROM sales WHERE qty > 100")
        assert result == [{"n": 0.0}]

    def test_aggregate_in_where_rejected(self, db):
        with pytest.raises(PlanError):
            db.execute("SELECT region FROM sales WHERE SUM(amount) > 10")

    def test_min_max_varchar(self, db):
        result = rows(db, "SELECT MIN(product) AS lo, MAX(product) AS hi FROM sales")
        assert result == [{"lo": "apple", "hi": "cherry"}]

    def test_aggregate_expression_arithmetic(self, db):
        result = rows(
            db, "SELECT SUM(amount) / COUNT(amount) AS mean FROM sales"
        )
        assert result == [{"mean": 34.0}]


class TestWindow:
    def test_row_number(self, db):
        result = rows(
            db,
            "SELECT qty, ROW_NUMBER() OVER (ORDER BY qty DESC) AS rn "
            "FROM sales ORDER BY qty",
        )
        assert [r["rn"] for r in result] == [6.0, 5.0, 4.0, 3.0, 2.0, 1.0]

    def test_partitioned_running_sum(self, db):
        result = rows(
            db,
            "SELECT product, qty, SUM(qty) OVER (PARTITION BY product "
            "ORDER BY qty ASC) AS run FROM sales ORDER BY product, qty",
        )
        apples = [r["run"] for r in result if r["product"] == "apple"]
        assert apples == [1.0, 4.0, 10.0]

    def test_full_partition_aggregate_without_order(self, db):
        result = rows(
            db,
            "SELECT product, SUM(qty) OVER (PARTITION BY product) AS total "
            "FROM sales ORDER BY product, qty",
        )
        assert [r["total"] for r in result if r["product"] == "banana"] == [7.0, 7.0]

    def test_window_over_group_by(self, db):
        result = rows(
            db,
            "SELECT product, SUM(SUM(qty)) OVER (ORDER BY product ASC) AS c "
            "FROM sales GROUP BY product ORDER BY product",
        )
        assert [r["c"] for r in result] == [10.0, 17.0, 21.0]

    def test_lag(self, db):
        result = rows(
            db,
            "SELECT qty, LAG(qty) OVER (ORDER BY qty ASC) AS prev "
            "FROM sales ORDER BY qty",
        )
        assert result[0]["prev"] is None
        assert result[1]["prev"] == 1.0

    def test_rank_with_ties(self, db):
        db.load_table("t", Table.from_columns(v=[10.0, 10.0, 20.0]))
        result = rows(
            db,
            "SELECT v, RANK() OVER (ORDER BY v ASC) AS r, "
            "DENSE_RANK() OVER (ORDER BY v ASC) AS d FROM t ORDER BY v, r",
        )
        assert [r["r"] for r in result] == [1.0, 1.0, 3.0]
        assert [r["d"] for r in result] == [1.0, 1.0, 2.0]


class TestJoin:
    def test_inner_join(self, db):
        result = rows(
            db,
            "SELECT sales.qty AS qty, regions.manager AS manager FROM sales "
            "JOIN regions ON sales.region = regions.region ORDER BY qty",
        )
        assert len(result) == 5  # NULL region row drops out
        assert result[0]["manager"] == "Ann"

    def test_left_join_pads_nulls(self, db):
        result = rows(
            db,
            "SELECT sales.qty AS qty, regions.manager AS manager FROM sales "
            "LEFT JOIN regions ON sales.region = regions.region ORDER BY qty",
        )
        assert len(result) == 6
        managers = {r["qty"]: r["manager"] for r in result}
        assert managers[6.0] is None

    def test_non_equi_join_rejected(self, db):
        with pytest.raises(PlanError):
            db.execute(
                "SELECT * FROM sales JOIN regions ON sales.qty > regions.region"
            )


class TestOrderLimit:
    def test_order_desc_nulls_first(self, db):
        result = rows(db, "SELECT amount FROM sales ORDER BY amount DESC")
        assert result[0]["amount"] is None  # Postgres-style: nulls are largest

    def test_order_asc_nulls_last(self, db):
        result = rows(db, "SELECT amount FROM sales ORDER BY amount ASC")
        assert result[-1]["amount"] is None

    def test_nulls_override(self, db):
        result = rows(
            db, "SELECT amount FROM sales ORDER BY amount ASC NULLS FIRST"
        )
        assert result[0]["amount"] is None

    def test_multi_key(self, db):
        result = rows(
            db, "SELECT product, qty FROM sales ORDER BY product ASC, qty DESC"
        )
        assert result[0] == {"product": "apple", "qty": 6.0}

    def test_order_by_expression_not_in_select(self, db):
        result = rows(db, "SELECT product FROM sales ORDER BY qty * -1")
        assert result[0]["product"] == "apple"  # qty=6 first
        # Hidden sort column must not leak into output.
        assert list(result[0].keys()) == ["product"]

    def test_limit_offset(self, db):
        result = rows(db, "SELECT qty FROM sales ORDER BY qty LIMIT 2 OFFSET 1")
        assert [r["qty"] for r in result] == [2.0, 3.0]

    def test_order_by_alias(self, db):
        result = rows(
            db, "SELECT qty * 2 AS dq FROM sales ORDER BY dq DESC LIMIT 1"
        )
        assert result == [{"dq": 12.0}]


class TestSubqueries:
    def test_nested_pipeline(self, db):
        result = rows(
            db,
            "SELECT region, total FROM ("
            "  SELECT region, SUM(amount) AS total FROM sales GROUP BY region"
            ") AS s WHERE total > 30 ORDER BY total DESC",
        )
        assert result == [
            {"region": "east", "total": 90.0},
            {"region": None, "total": 60.0},
        ]

    def test_doubly_nested(self, db):
        result = rows(
            db,
            "SELECT MAX(total) AS top FROM ("
            "  SELECT region, total FROM ("
            "    SELECT region, SUM(amount) AS total FROM sales GROUP BY region"
            "  ) AS inner1 WHERE region IS NOT NULL"
            ") AS outer1",
        )
        assert result == [{"top": 90.0}]


class TestDdlDml:
    def test_create_insert_select(self):
        db = Database()
        db.execute("CREATE TABLE t (a DOUBLE, b VARCHAR)")
        inserted = db.execute("INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)")
        assert inserted == 2
        assert rows(db, "SELECT * FROM t ORDER BY a") == [
            {"a": 1.0, "b": "x"},
            {"a": 2.0, "b": None},
        ]

    def test_drop(self):
        db = Database()
        db.execute("CREATE TABLE t (a DOUBLE)")
        db.execute("DROP TABLE t")
        assert "t" not in db.table_names()

    def test_explain_statement(self, db):
        text = db.execute("EXPLAIN SELECT region FROM sales WHERE qty > 1")
        assert "Filter" in text
        assert "Scan sales" in text


class TestFunctions:
    def test_scalar_functions(self, db):
        result = rows(
            db,
            "SELECT ABS(-1 * qty) AS a, POWER(qty, 2) AS p, "
            "UPPER(product) AS u FROM sales WHERE qty = 2",
        )
        assert result == [{"a": 2.0, "p": 4.0, "u": "BANANA"}]

    def test_coalesce(self, db):
        result = rows(
            db, "SELECT COALESCE(amount, 0) AS a FROM sales WHERE qty = 4"
        )
        assert result == [{"a": 0.0}]

    def test_least_greatest(self, db):
        result = rows(
            db, "SELECT LEAST(qty, 3) AS lo, GREATEST(qty, 3) AS hi "
            "FROM sales WHERE qty = 5"
        )
        assert result == [{"lo": 3.0, "hi": 5.0}]

    def test_sqrt_negative_is_null(self, db):
        result = rows(db, "SELECT SQRT(0 - qty) AS s FROM sales WHERE qty = 1")
        assert result == [{"s": None}]

    def test_division_by_zero_is_null(self, db):
        result = rows(db, "SELECT qty / 0 AS d FROM sales WHERE qty = 1")
        assert result == [{"d": None}]

    def test_unknown_function(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT FROBNICATE(qty) FROM sales")

    def test_strpos(self, db):
        result = rows(
            db, "SELECT STRPOS(product, 'an') AS p FROM sales WHERE qty = 2"
        )
        assert result == [{"p": 2.0}]

    def test_cast(self, db):
        result = rows(
            db, "SELECT CAST(qty AS VARCHAR) AS s FROM sales WHERE qty = 1"
        )
        assert result == [{"s": "1"}]
