"""Event streams: Vega's ``on: [{events, update}]`` signal handlers.

"Interaction events update operator parameters or data inputs" (§2.1).
In Vega, UI events (clicks, drags, widget changes) flow through event
streams into signal updates.  This module models that layer: an
:class:`EventRouter` matches dispatched events against each signal's
handlers and evaluates the handler's ``update`` expression with ``event``
(the event payload) and ``datum`` (the picked data item) in scope.
"""

from dataclasses import dataclass, field
from typing import List, Optional

from repro.expr.evaluator import Evaluator
from repro.expr.parser import parse


class EventError(Exception):
    """Bad handler declaration or dispatch."""


@dataclass
class EventHandler:
    """One ``{events, update}`` clause on a signal."""

    signal: str
    events: str  # event-type selector, e.g. "click", "mousemove", "wheel"
    update: str  # expression over event/datum/signals

    def __post_init__(self):
        self._node = parse(self.update)

    def matches(self, event_type):
        return self.events == event_type or self.events == "*"


@dataclass
class Event:
    """A dispatched UI event."""

    type: str
    #: arbitrary payload (x/y coordinates, key, widget value, ...)
    payload: dict = field(default_factory=dict)
    #: the data item under the pointer, if any
    datum: Optional[dict] = None


class EventRouter:
    """Routes events to signal updates on a VegaPlus session."""

    def __init__(self, session):
        self.session = session
        self.handlers: List[EventHandler] = []
        self._install_from_spec()

    def _install_from_spec(self):
        for signal in self.session.compiled.spec.signals:
            raw = getattr(signal, "bind", None)
            # Handlers come from the raw spec's "on" clauses, which the
            # parser stores on the SignalSpec when present.
            for clause in getattr(signal, "on", None) or []:
                self.add_handler(signal.name, clause.get("events"),
                                 clause.get("update"))

    def add_handler(self, signal, events, update):
        """Register a handler; ``events`` is an event-type name."""
        if not events or not update:
            raise EventError("handler needs 'events' and 'update'")
        if signal not in self.session.signals:
            raise EventError("unknown signal {!r}".format(signal))
        handler = EventHandler(signal=signal, events=events, update=update)
        self.handlers.append(handler)
        return handler

    def dispatch(self, event_type, payload=None, datum=None):
        """Dispatch one event; returns the interaction RunResults (one per
        signal whose value changed)."""
        event = Event(type=event_type, payload=payload or {}, datum=datum)
        evaluator = Evaluator(signals=self.session.signals)
        results = []
        for handler in self.handlers:
            if not handler.matches(event.type):
                continue
            scope = {"event": {"type": event.type, **event.payload}}
            value = evaluator.evaluate(
                handler._node, datum=event.datum, extra=scope
            )
            if value != self.session.signals.get(handler.signal):
                results.append(
                    self.session.interact(handler.signal, value)
                )
        return results
