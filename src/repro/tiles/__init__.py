"""Data-tile index: O(bins) brush interactions instead of O(rows).

When a sink's interactive predicate is a 1-D or 2-D range brush over
numeric fields, the session materializes — once, server-side — a
bin x bin aggregate cube of the sink's (decomposable) measures, then
answers every subsequent brush event by slicing the cube: membership of
each brush bin is decided by evaluating the actual filter expression on
one representative value per bin, and the selected partials merge in
O(bins x groups) numpy reductions with zero base-table scans.  See
docs/ARCHITECTURE.md for the lifecycle and the planner decision rule.
"""

from repro.tiles.build import (
    TILE_RESOLUTION,
    TileBuildError,
    build_cube,
    component_plan,
)
from repro.tiles.cube import BrushGrid, TileCube, slice_result
from repro.tiles.detect import (
    SUPPORTED_MEASURES,
    BrushAxis,
    BrushComparison,
    Ineligible,
    TileCandidate,
    analyze_brush_expr,
    detect_candidate,
)
from repro.tiles.manager import TileIndexManager

__all__ = [
    "TILE_RESOLUTION",
    "TileBuildError",
    "build_cube",
    "component_plan",
    "BrushGrid",
    "TileCube",
    "slice_result",
    "SUPPORTED_MEASURES",
    "BrushAxis",
    "BrushComparison",
    "Ineligible",
    "TileCandidate",
    "analyze_brush_expr",
    "detect_candidate",
    "TileIndexManager",
]
