"""Transform operator base class and registry.

Each Vega transform type registers itself here by its spec name
("filter", "bin", "aggregate", ...).  The spec compiler instantiates
transforms via :func:`create_transform`; the SQL generator looks up
translation capability per type in :mod:`repro.sqlgen.translate`.
"""

from repro.data import ColumnBatch, concat_batches
from repro.dataflow.operator import Operator
from repro.dataflow.pulse import Pulse
from repro.dataflow.vectorized import Unvectorizable


class TransformError(Exception):
    """Bad transform parameters or unsupported usage."""


_REGISTRY = {}


def register_transform(spec_type):
    """Class decorator: register a Transform under its Vega spec name."""

    def wrap(cls):
        cls.spec_type = spec_type
        _REGISTRY[spec_type] = cls
        return cls

    return wrap


def transform_types():
    return sorted(_REGISTRY)


def create_transform(spec_type, name, params, source):
    cls = _REGISTRY.get(spec_type)
    if cls is None:
        raise TransformError("unknown transform type {!r}".format(spec_type))
    return cls(name, params=params, source=source)


class Transform(Operator):
    """A data operator computing output rows from input rows.

    Subclasses implement ``transform(rows, params, signals) -> rows``.
    Rows must be treated as immutable: transforms that modify fields copy
    the affected dicts (matching Vega's derive-on-write tuples).
    """

    kind = "transform"
    spec_type = "?"
    #: when True and the incoming pulse carries a ColumnBatch, try the
    #: vectorized ``transform_batch`` first; an Unvectorizable raise
    #: falls back to the row path (set False — per instance or per
    #: class — to force row-at-a-time execution, e.g. for differential
    #: testing of the two paths)
    columnar = True
    #: when True the transform is row-local given its params (filter,
    #: formula, project, bin): a chunked input batch runs the vectorized
    #: kernel per chunk and the output preserves the chunk layout, so a
    #: disk-backed dataset streams through without consolidating
    streaming = False

    def run(self, pulse, params, signals):
        if self.columnar and pulse.batch is not None:
            try:
                batch = self._transform_batch_chunked(
                    pulse.batch, params, signals
                )
            except Unvectorizable:
                pass
            else:
                return Pulse(batch=batch, changed=True)
        rows = self.transform(pulse.rows, params, signals)
        return Pulse(rows=rows, changed=True)

    def _transform_batch_chunked(self, batch, params, signals):
        if not (self.streaming and batch.is_chunked):
            return self.transform_batch(batch, params, signals)
        pieces = []
        for lo, hi, piece in batch.iter_chunk_batches():
            pieces.append(self.transform_batch(piece, params, signals))
            for column in batch.columns.values():
                column.release(lo, hi)
        if not pieces:
            return self.transform_batch(batch.slice(0, 0), params, signals)
        return concat_batches(pieces, chunked=True)

    def transform(self, rows, params, signals):
        raise NotImplementedError

    def transform_batch(self, batch, params, signals):
        """Columnar counterpart of ``transform``; the default declines so
        only transforms with a vectorized implementation opt in."""
        raise Unvectorizable(type(self).__name__)


class ValueTransform(Transform):
    """A transform whose primary output is a value (e.g. extent).

    The rows pass through unchanged; ``compute_value`` fills
    ``pulse.value`` for parameter consumers.
    """

    def run(self, pulse, params, signals):
        if self.columnar and pulse.batch is not None:
            try:
                value = self.compute_value_batch(pulse.batch, params, signals)
            except Unvectorizable:
                pass
            else:
                return pulse.with_value(value)
        value = self.compute_value(pulse.rows, params, signals)
        return pulse.with_value(value)

    def compute_value(self, rows, params, signals):
        raise NotImplementedError

    def compute_value_batch(self, batch, params, signals):
        raise Unvectorizable(type(self).__name__)


class DataSource(Operator):
    """A root operator holding raw data (the Vega ``data`` source).

    Accepts either a list of row dicts or a :class:`ColumnBatch`; with a
    batch the data stays columnar until a consumer actually needs the
    row view (``.rows`` materializes it lazily, then caches it so
    repeated pulses share one materialization).
    """

    kind = "source"
    spec_type = "source"

    def __init__(self, name, rows=None):
        super().__init__(name, params={}, source=None)
        self._batch = None
        self._rows = []
        self.set_rows(rows)

    @property
    def rows(self):
        if self._rows is None:
            self._rows = self._batch.to_rows()
        return self._rows

    @property
    def batch(self):
        return self._batch

    def set_rows(self, rows):
        if isinstance(rows, ColumnBatch):
            self._batch = rows
            self._rows = None
        else:
            self._batch = None
            self._rows = list(rows or [])

    def run(self, pulse, params, signals):
        return Pulse(rows=self._rows, changed=True, batch=self._batch)
